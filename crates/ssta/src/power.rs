//! Switching power under the zero-delay model.
//!
//! The paper (Section 4) notes that with capacitances and switching
//! activities folded into the weights, the weighted-sum-of-speed-factors
//! objective models **power**, because dynamic power scales linearly with
//! the speed factor just as area does. This module supplies those weights:
//! signal probabilities propagate through the gate functions assuming
//! spatially independent inputs, activities follow from temporal
//! independence (`alpha = 2 p (1 - p)`), and each gate's input capacitance
//! `C_in * S` is charged by its driving net's toggles.

use crate::delay::DelayModel;
use sgs_netlist::{Circuit, GateKind, Library, Signal};

/// Static signal probability (probability of logic 1) at every gate
/// output, propagated under the spatial-independence assumption.
///
/// `input_probs` gives `P(1)` per primary input; pass 0.5 for unbiased
/// inputs.
///
/// # Panics
///
/// Panics if `input_probs.len() != circuit.num_inputs()` or a probability
/// is outside `[0, 1]`.
pub fn signal_probabilities(circuit: &Circuit, input_probs: &[f64]) -> Vec<f64> {
    assert_eq!(
        input_probs.len(),
        circuit.num_inputs(),
        "one probability per primary input"
    );
    for &p in input_probs {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    }
    let mut probs = Vec::with_capacity(circuit.num_gates());
    for (_, gate) in circuit.gates() {
        let at = |sig: Signal| -> f64 {
            match sig {
                Signal::Pi(p) => input_probs[p],
                Signal::Gate(g) => probs[g.index()],
            }
        };
        let ins: Vec<f64> = gate.inputs.iter().map(|&s| at(s)).collect();
        let p = match gate.kind {
            GateKind::Inv => 1.0 - ins[0],
            GateKind::Buf => ins[0],
            GateKind::Nand2 | GateKind::Nand3 | GateKind::Nand4 => {
                1.0 - ins.iter().product::<f64>()
            }
            GateKind::And2 => ins.iter().product(),
            GateKind::Nor2 | GateKind::Nor3 => ins.iter().map(|p| 1.0 - p).product(),
            GateKind::Or2 => 1.0 - ins.iter().map(|p| 1.0 - p).product::<f64>(),
            GateKind::Xor2 => ins[0] * (1.0 - ins[1]) + (1.0 - ins[0]) * ins[1],
            // `GateKind` is non-exhaustive; fail loudly if a future kind
            // reaches the power model without a probability rule.
            other => panic!("no signal-probability rule for gate kind {other}"),
        };
        probs.push(p);
    }
    probs
}

/// Switching activity (expected toggles per cycle) of every gate output:
/// `alpha = 2 p (1 - p)` under temporal independence.
pub fn switching_activities(circuit: &Circuit, input_probs: &[f64]) -> Vec<f64> {
    signal_probabilities(circuit, input_probs)
        .into_iter()
        .map(|p| 2.0 * p * (1.0 - p))
        .collect()
}

/// Per-gate power weights `w_j` such that the size-dependent part of the
/// dynamic power is `sum_j w_j S_j`: gate `j`'s input capacitance
/// `C_in,j * S_j` loads each of its driving nets, whose toggles charge it.
/// Primary-input nets are assigned activity `2 p (1 - p)` from
/// `input_probs`. Use with [`sgs-core`'s weighted-area
/// objective](https://docs.rs/) to size for minimum power.
pub fn power_weights(circuit: &Circuit, lib: &Library, input_probs: &[f64]) -> Vec<f64> {
    let act = switching_activities(circuit, input_probs);
    let mut w = vec![0.0; circuit.num_gates()];
    for (id, gate) in circuit.gates() {
        let c_in = lib.params(gate.kind).c_in;
        let mut driving_activity = 0.0;
        for &sig in &gate.inputs {
            driving_activity += match sig {
                Signal::Pi(p) => 2.0 * input_probs[p] * (1.0 - input_probs[p]),
                Signal::Gate(g) => act[g.index()],
            };
        }
        w[id.index()] = c_in * driving_activity;
    }
    w
}

/// Total size-dependent dynamic power estimate (arbitrary units,
/// `V^2 f = 1`): switched static load plus the `sum w_j S_j` term.
///
/// # Panics
///
/// Panics on length mismatches.
pub fn power_estimate(circuit: &Circuit, lib: &Library, s: &[f64], input_probs: &[f64]) -> f64 {
    assert_eq!(s.len(), circuit.num_gates(), "speed vector length mismatch");
    let act = switching_activities(circuit, input_probs);
    let model = DelayModel::new(circuit, lib);
    let mut total = 0.0;
    for (id, _) in circuit.gates() {
        // Every toggle of this gate's output charges its static load plus
        // the (sized) input capacitance of its fan-out gates.
        total += act[id.index()] * model.load_cap(id, s);
    }
    // Primary-input nets toggle too and charge the first-level gates'
    // (sized) input capacitances plus their wire load.
    for (id, gate) in circuit.gates() {
        let c_in = lib.params(gate.kind).c_in;
        for &sig in &gate.inputs {
            if let Signal::Pi(p) = sig {
                let a = 2.0 * input_probs[p] * (1.0 - input_probs[p]);
                total += a * c_in * s[id.index()];
            }
        }
    }
    for p in input_probs {
        total += 2.0 * p * (1.0 - p) * lib.wire_load;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_netlist::generate;

    fn lib() -> Library {
        Library::paper_default()
    }

    #[test]
    fn probabilities_match_truth_tables() {
        let c = generate::fig2(); // NAND2 x3 feeding NAND3
        let p = signal_probabilities(&c, &[0.5, 0.5, 0.5]);
        // NAND2 of two p=0.5 inputs: 1 - 0.25 = 0.75.
        assert!((p[0] - 0.75).abs() < 1e-12);
        assert!((p[1] - 0.75).abs() < 1e-12);
        assert!((p[2] - 0.75).abs() < 1e-12);
        // NAND3 of three p=0.75: 1 - 0.421875 = 0.578125.
        assert!((p[3] - (1.0 - 0.75f64.powi(3))).abs() < 1e-12);
    }

    #[test]
    fn xor_probability() {
        let c = generate::ripple_carry_adder(1);
        // First gate is XOR2 of two 0.5 inputs: p = 0.5.
        let p = signal_probabilities(&c, &vec![0.5; c.num_inputs()]);
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn activities_bounded() {
        let c = generate::benchmark_suite().remove(1);
        let act = switching_activities(&c, &vec![0.5; c.num_inputs()]);
        for &a in &act {
            assert!((0.0..=0.5).contains(&a), "activity {a} out of [0, 0.5]");
        }
    }

    #[test]
    fn constant_inputs_kill_activity() {
        let c = generate::tree7();
        let act = switching_activities(&c, &[1.0; 8]);
        for &a in &act {
            assert!(a.abs() < 1e-12);
        }
    }

    #[test]
    fn power_increases_with_sizing() {
        let c = generate::tree7();
        let probs = vec![0.5; 8];
        let p1 = power_estimate(&c, &lib(), &[1.0; 7], &probs);
        let p3 = power_estimate(&c, &lib(), &[3.0; 7], &probs);
        assert!(p3 > p1, "{p3} vs {p1}");
    }

    #[test]
    fn power_weights_are_linear_coefficients() {
        // power(s) - power(1) == sum w_j (s_j - 1) exactly.
        let c = generate::ripple_carry_adder(3);
        let probs = vec![0.5; c.num_inputs()];
        let w = power_weights(&c, &lib(), &probs);
        let s1 = vec![1.0; c.num_gates()];
        let mut s2 = s1.clone();
        for (i, v) in s2.iter_mut().enumerate() {
            *v = 1.0 + 0.1 * (i % 7) as f64;
        }
        let direct =
            power_estimate(&c, &lib(), &s2, &probs) - power_estimate(&c, &lib(), &s1, &probs);
        let linear: f64 = w
            .iter()
            .zip(&s2)
            .zip(&s1)
            .map(|((wi, a), b)| wi * (a - b))
            .sum();
        assert!((direct - linear).abs() < 1e-9, "{direct} vs {linear}");
    }

    #[test]
    #[should_panic(expected = "one probability per primary input")]
    fn length_checked() {
        let c = generate::tree7();
        let _ = signal_probabilities(&c, &[0.5]);
    }
}
