//! Forward statistical (and deterministic) static timing analysis.
//!
//! # Parallel evaluation
//!
//! Arrival propagation is inherently sequential along paths but parallel
//! across a topological level: every gate at level `L` depends only on
//! arrivals at levels `< L`. [`ssta_levelized`] exploits this through the
//! structure-of-arrays sweep in [`crate::soa`]: each level's fan-in
//! moments are gathered into contiguous arrays and folded by the batched
//! Clark kernel, with wide levels split across rayon threads. Because
//! each gate's arrival is the same pure function of its fan-in arrivals
//! either way, the levelized path is bit-identical to the sequential left
//! fold. [`ssta`] auto-dispatches: circuits below [`PAR_GATE_THRESHOLD`]
//! gates (or single-threaded runs) keep the cheap sequential path.

use crate::delay::DelayModel;
use crate::soa::{ArrivalRead, ArrivalSoa, LevelSweeper};
use sgs_netlist::{Circuit, GateId, Library, Signal};
use sgs_statmath::{clark, Normal};

/// Minimum gate count before [`ssta`] considers the level-parallel path:
/// below this, per-level thread dispatch costs more than it saves.
pub const PAR_GATE_THRESHOLD: usize = 2048;

/// Result of a statistical timing analysis.
#[derive(Debug, Clone)]
pub struct SstaReport {
    /// Arrival-time distribution at each gate output, indexed by gate id.
    pub arrivals: Vec<Normal>,
    /// Circuit delay distribution: the stochastic max over all primary
    /// outputs (the paper's `(mu_Tmax, sigma_Tmax)`).
    pub delay: Normal,
}

impl SstaReport {
    /// `mu_Tmax + k * sigma_Tmax`, the paper's robust delay metric.
    pub fn mean_plus_k_sigma(&self, k: f64) -> f64 {
        self.delay.mean_plus_k_sigma(k)
    }
}

/// Statistical STA with zero-arrival primary inputs (the paper's setting).
///
/// `s` holds one speed factor per gate.
///
/// # Panics
///
/// Panics if `s.len() != circuit.num_gates()`.
pub fn ssta(circuit: &Circuit, lib: &Library, s: &[f64]) -> SstaReport {
    ssta_with_arrivals(circuit, lib, s, None)
}

/// Statistical STA with explicit primary-input arrival distributions
/// (`None` entries and a `None` slice mean "arrives at exactly 0").
///
/// # Panics
///
/// Panics if `s.len() != circuit.num_gates()` or the arrival slice length
/// differs from the input count.
pub fn ssta_with_arrivals(
    circuit: &Circuit,
    lib: &Library,
    s: &[f64],
    input_arrivals: Option<&[Normal]>,
) -> SstaReport {
    let model = DelayModel::new(circuit, lib);
    ssta_with_model_and_arrivals(circuit, &model, s, input_arrivals)
}

/// Statistical STA reusing a prebuilt [`DelayModel`] — the entry point
/// for callers that evaluate many speed vectors on one circuit (greedy
/// sizing, discretization repair, Monte Carlo sweeps), where rebuilding
/// the model per evaluation dominates.
///
/// # Panics
///
/// Panics if `s.len() != circuit.num_gates()`.
pub fn ssta_with_model(circuit: &Circuit, model: &DelayModel, s: &[f64]) -> SstaReport {
    ssta_with_model_and_arrivals(circuit, model, s, None)
}

/// [`ssta_with_model`] with explicit primary-input arrival distributions.
///
/// Dispatches to the level-parallel propagation for large circuits when
/// more than one rayon thread is available; the result is bit-identical
/// between both paths.
///
/// # Panics
///
/// Panics if `s.len() != circuit.num_gates()` or the arrival slice length
/// differs from the input count.
pub fn ssta_with_model_and_arrivals(
    circuit: &Circuit,
    model: &DelayModel,
    s: &[f64],
    input_arrivals: Option<&[Normal]>,
) -> SstaReport {
    assert_eq!(s.len(), circuit.num_gates(), "speed vector length mismatch");
    if let Some(ia) = input_arrivals {
        assert_eq!(
            ia.len(),
            circuit.num_inputs(),
            "input arrival length mismatch"
        );
    }
    sgs_metrics::incr(sgs_metrics::Counter::SstaFullPasses);
    let _timer = sgs_metrics::time_hist(sgs_metrics::HistId::SstaFullSeconds);
    let arrivals = if circuit.num_gates() >= PAR_GATE_THRESHOLD && rayon::current_num_threads() > 1
    {
        arrivals_levelized(circuit, model, s, input_arrivals)
    } else {
        arrivals_sequential(circuit, model, s, input_arrivals)
    };
    report_from_arrivals(circuit, arrivals)
}

/// [`ssta_with_arrivals`] under a trace span: the whole propagation is
/// recorded as an `"ssta"` phase span plus an `ssta_gates` counter, so a
/// run report attributes analysis time separately from solver time. With
/// a disabled tracer this is exactly [`ssta_with_arrivals`] — same
/// result, no clock reads, no allocation.
///
/// # Panics
///
/// Panics if `s.len() != circuit.num_gates()` or the arrival slice length
/// differs from the input count.
pub fn ssta_traced(
    circuit: &Circuit,
    lib: &Library,
    s: &[f64],
    input_arrivals: Option<&[Normal]>,
    tracer: sgs_trace::Tracer<'_>,
) -> SstaReport {
    let report = {
        let _sp = tracer.span("ssta");
        ssta_with_arrivals(circuit, lib, s, input_arrivals)
    };
    tracer.emit(|| sgs_trace::TraceEvent::Counter {
        name: "ssta_gates",
        value: circuit.num_gates() as u64,
    });
    report
}

/// Statistical STA forced onto the level-parallel propagation path,
/// regardless of circuit size or thread count. Exposed so determinism
/// tests and benchmarks can compare it directly against [`ssta`].
///
/// # Panics
///
/// Panics if `s.len() != circuit.num_gates()`.
pub fn ssta_levelized(circuit: &Circuit, lib: &Library, s: &[f64]) -> SstaReport {
    assert_eq!(s.len(), circuit.num_gates(), "speed vector length mismatch");
    let model = DelayModel::new(circuit, lib);
    let arrivals = arrivals_levelized(circuit, &model, s, None);
    report_from_arrivals(circuit, arrivals)
}

/// Arrival of `sig` given already-computed gate arrivals (in either
/// storage layout — see [`ArrivalRead`]).
#[inline]
pub(crate) fn arrival_of<A: ArrivalRead + ?Sized>(
    sig: Signal,
    arrivals: &A,
    input_arrivals: Option<&[Normal]>,
) -> Normal {
    match sig {
        Signal::Pi(p) => input_arrivals.map_or_else(Normal::default, |ia| ia[p]),
        Signal::Gate(g) => arrivals.arrival(g.index()),
    }
}

/// Latest arrival of one gate: stochastic max over fan-in arrivals (left
/// fold, paper Eq. 18b) plus the gate delay (paper Eq. 4). The single
/// pure function both propagation orders evaluate.
#[inline]
pub(crate) fn gate_arrival<A: ArrivalRead + ?Sized>(
    circuit: &Circuit,
    model: &DelayModel,
    s: &[f64],
    arrivals: &A,
    input_arrivals: Option<&[Normal]>,
    idx: usize,
) -> Normal {
    let id = GateId(idx);
    let gate = circuit.gate(id);
    let u = clark::max_n(
        gate.inputs
            .iter()
            .map(|&sig| arrival_of(sig, arrivals, input_arrivals)),
    )
    .expect("gates have at least one input");
    u + model.gate_delay(id, s)
}

pub(crate) fn arrivals_sequential(
    circuit: &Circuit,
    model: &DelayModel,
    s: &[f64],
    input_arrivals: Option<&[Normal]>,
) -> ArrivalSoa {
    let mut arrivals = ArrivalSoa::with_capacity(circuit.num_gates());
    for idx in 0..circuit.num_gates() {
        let a = gate_arrival(circuit, model, s, &arrivals, input_arrivals, idx);
        arrivals.push(a);
    }
    arrivals
}

/// Level-batched propagation: gates grouped by topological level; each
/// level's fan-in moments are gathered into contiguous arrays and folded
/// by [`clark::max_batch`], with wide levels chunked across rayon
/// threads (see [`LevelSweeper`]). Reads and writes never overlap within
/// a level and the per-lane arithmetic is the scalar kernel's, so the
/// schedule cannot affect the result.
fn arrivals_levelized(
    circuit: &Circuit,
    model: &DelayModel,
    s: &[f64],
    input_arrivals: Option<&[Normal]>,
) -> ArrivalSoa {
    let mut sweeper = LevelSweeper::new(circuit);
    let mut arrivals = ArrivalSoa::zeroed(circuit.num_gates());
    sweeper.sweep(circuit, model, s, input_arrivals, &mut arrivals);
    arrivals
}

/// Circuit delay from finished arrivals: the stochastic max over the
/// primary outputs, folded left in output-list order. Every analysis
/// entry point (and the incremental engine) shares this one fold so the
/// operand order — and therefore the bit pattern — cannot drift.
pub(crate) fn delay_from_arrivals<A: ArrivalRead + ?Sized>(
    circuit: &Circuit,
    arrivals: &A,
) -> Normal {
    clark::max_n(
        circuit
            .outputs()
            .iter()
            .map(|&o| arrivals.arrival(o.index())),
    )
    .expect("validated circuits have outputs")
}

fn report_from_arrivals(circuit: &Circuit, arrivals: ArrivalSoa) -> SstaReport {
    let delay = delay_from_arrivals(circuit, &arrivals);
    SstaReport {
        arrivals: arrivals.to_normals(),
        delay,
    }
}

/// Traditional deterministic STA: every gate contributes `mu_t + margin_k *
/// sigma_t` as a fixed delay and arrival times combine with the plain max.
///
/// `margin_k = 0` is "typical case"; `margin_k = 3` is the pessimistic
/// worst-case corner the paper argues statistical analysis should replace.
///
/// Returns the circuit delay (a plain number) and per-gate arrivals.
///
/// # Panics
///
/// Panics if `s.len() != circuit.num_gates()`.
pub fn sta_deterministic(
    circuit: &Circuit,
    lib: &Library,
    s: &[f64],
    margin_k: f64,
) -> (f64, Vec<f64>) {
    let model = DelayModel::new(circuit, lib);
    sta_deterministic_with_model(circuit, &model, s, margin_k)
}

/// [`sta_deterministic`] reusing a prebuilt [`DelayModel`].
///
/// # Panics
///
/// Panics if `s.len() != circuit.num_gates()`.
pub fn sta_deterministic_with_model(
    circuit: &Circuit,
    model: &DelayModel,
    s: &[f64],
    margin_k: f64,
) -> (f64, Vec<f64>) {
    assert_eq!(s.len(), circuit.num_gates(), "speed vector length mismatch");
    let mut arrivals: Vec<f64> = Vec::with_capacity(circuit.num_gates());
    for (id, gate) in circuit.gates() {
        let u = gate
            .inputs
            .iter()
            .map(|&sig| match sig {
                Signal::Pi(_) => 0.0,
                Signal::Gate(g) => arrivals[g.index()],
            })
            .fold(f64::NEG_INFINITY, f64::max);
        let d = model.gate_delay(id, s);
        arrivals.push(u + d.mean() + margin_k * d.sigma());
    }
    let delay = circuit
        .outputs()
        .iter()
        .map(|&o| arrivals[o.index()])
        .fold(f64::NEG_INFINITY, f64::max);
    (delay, arrivals)
}

/// Earliest-arrival statistical analysis: the dual of [`ssta`], folding
/// fan-ins with the stochastic **min** — what a hold-time / short-path
/// check needs. Returns per-gate earliest arrivals and the earliest
/// arrival over the primary outputs.
///
/// # Panics
///
/// Panics if `s.len() != circuit.num_gates()`.
pub fn ssta_earliest(circuit: &Circuit, lib: &Library, s: &[f64]) -> (Vec<Normal>, Normal) {
    assert_eq!(s.len(), circuit.num_gates(), "speed vector length mismatch");
    let model = DelayModel::new(circuit, lib);
    let mut arrivals: Vec<Normal> = Vec::with_capacity(circuit.num_gates());
    for (id, gate) in circuit.gates() {
        let u = clark::min_n(gate.inputs.iter().map(|&sig| match sig {
            Signal::Pi(_) => Normal::default(),
            Signal::Gate(g) => arrivals[g.index()],
        }))
        .expect("gates have at least one input");
        arrivals.push(u + model.gate_delay(id, s));
    }
    let earliest = clark::min_n(circuit.outputs().iter().map(|&o| arrivals[o.index()]))
        .expect("validated circuits have outputs");
    (arrivals, earliest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_netlist::generate;

    fn lib() -> Library {
        Library::paper_default()
    }

    #[test]
    fn chain_delay_is_sum_of_gate_delays() {
        // A chain has no max operations beyond single-input folds, so the
        // statistical delay must be the exact sum of the gate delays.
        let c = generate::inverter_chain(10);
        let s = vec![1.0; 10];
        let model = DelayModel::new(&c, &lib());
        let report = ssta(&c, &lib(), &s);
        let mut want_mu = 0.0;
        let mut want_var = 0.0;
        for (id, _) in c.gates() {
            let d = model.gate_delay(id, &s);
            want_mu += d.mean();
            want_var += d.var();
        }
        assert!((report.delay.mean() - want_mu).abs() < 1e-9);
        assert!((report.delay.var() - want_var).abs() < 1e-9);
    }

    #[test]
    fn statistical_mean_between_typical_and_worst_case() {
        let c = generate::tree7();
        let s = vec![1.0; 7];
        let report = ssta(&c, &lib(), &s);
        let (typical, _) = sta_deterministic(&c, &lib(), &s, 0.0);
        let (worst3, _) = sta_deterministic(&c, &lib(), &s, 3.0);
        // The max operator pushes the statistical mean above the
        // deterministic typical case; the 3-sigma corner is far above both
        // the mean and the mean + 3 sigma of the true distribution (the
        // paper's pessimism argument).
        assert!(report.delay.mean() > typical);
        assert!(worst3 > report.mean_plus_k_sigma(3.0));
    }

    #[test]
    fn balanced_tree_bumps_mean_and_shrinks_sigma() {
        let c = generate::tree7();
        let s = vec![1.0; 7];
        let report = ssta(&c, &lib(), &s);
        // Relative uncertainty of the whole circuit is below the per-gate
        // 25% (the headline observation of the statistical delay papers).
        let rel = report.delay.sigma() / report.delay.mean();
        assert!(rel < 0.25, "relative sigma {rel} not reduced");
    }

    #[test]
    fn sizing_up_reduces_delay() {
        let c = generate::tree7();
        let all1 = vec![1.0; 7];
        let all3 = vec![3.0; 7];
        let d1 = ssta(&c, &lib(), &all1).delay;
        let d3 = ssta(&c, &lib(), &all3).delay;
        assert!(d3.mean() < d1.mean());
    }

    #[test]
    fn input_arrivals_shift_delay() {
        let c = generate::tree7();
        let s = vec![1.0; 7];
        let base = ssta(&c, &lib(), &s).delay;
        let late = vec![Normal::new(10.0, 0.0); c.num_inputs()];
        let shifted = ssta_with_arrivals(&c, &lib(), &s, Some(&late)).delay;
        assert!((shifted.mean() - base.mean() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn arrivals_monotone_along_paths() {
        let c = generate::ripple_carry_adder(6);
        let s = vec![1.0; c.num_gates()];
        let r = ssta(&c, &lib(), &s);
        for (id, gate) in c.gates() {
            for &sig in &gate.inputs {
                if let Signal::Gate(src) = sig {
                    assert!(
                        r.arrivals[id.index()].mean() > r.arrivals[src.index()].mean(),
                        "arrival not increasing along {src} -> {id}"
                    );
                }
            }
        }
    }

    #[test]
    fn earliest_below_latest_everywhere() {
        let c = generate::ripple_carry_adder(5);
        let s = vec![1.0; c.num_gates()];
        let latest = ssta(&c, &lib(), &s);
        let (early, earliest) = ssta_earliest(&c, &lib(), &s);
        for (i, (e, l)) in early.iter().zip(&latest.arrivals).enumerate() {
            assert!(e.mean() <= l.mean() + 1e-9, "gate {i}");
        }
        assert!(earliest.mean() <= latest.delay.mean());
    }

    #[test]
    fn earliest_equals_latest_on_chain() {
        // A single path has no min/max choice: both analyses coincide.
        let c = generate::inverter_chain(7);
        let s = vec![1.4; 7];
        let latest = ssta(&c, &lib(), &s);
        let (_, earliest) = ssta_earliest(&c, &lib(), &s);
        assert!((earliest.mean() - latest.delay.mean()).abs() < 1e-9);
        assert!((earliest.var() - latest.delay.var()).abs() < 1e-9);
    }

    #[test]
    fn earliest_matches_monte_carlo() {
        use crate::monte_carlo;
        let c = generate::tree7();
        let s = vec![1.0; 7];
        let (_, earliest) = ssta_earliest(&c, &lib(), &s);
        // Sample the min-arrival directly.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let model = DelayModel::new(&c, &lib());
        let dists: Vec<Normal> = c.gates().map(|(id, _)| model.gate_delay(id, &s)).collect();
        let mut rng = StdRng::seed_from_u64(55);
        let mut arr = [0.0; 7];
        let (m, v) = sgs_statmath::mc::moments((0..60_000).map(|_| {
            for (i, (_, gate)) in c.gates().enumerate() {
                let u = gate
                    .inputs
                    .iter()
                    .map(|&sig| match sig {
                        Signal::Pi(_) => 0.0,
                        Signal::Gate(g) => arr[g.index()],
                    })
                    .fold(f64::INFINITY, f64::min);
                arr[i] = u + sgs_statmath::mc::sample(dists[i], &mut rng);
            }
            arr[6]
        }));
        let _ = monte_carlo; // module used above for doc parity
        assert!(
            (earliest.mean() - m).abs() < 0.03 * m,
            "{} vs {m}",
            earliest.mean()
        );
        assert!(
            (earliest.var() - v).abs() < 0.15 * v,
            "{} vs {v}",
            earliest.var()
        );
    }

    #[test]
    fn report_metric_consistent() {
        let c = generate::fig2();
        let s = vec![1.0; 4];
        let r = ssta(&c, &lib(), &s);
        assert!(
            (r.mean_plus_k_sigma(3.0) - (r.delay.mean() + 3.0 * r.delay.sigma())).abs() < 1e-12
        );
    }

    #[test]
    fn traced_ssta_matches_plain_and_records_span() {
        let c = generate::tree7();
        let s = [1.5; 7];
        let plain = ssta(&c, &lib(), &s);
        let sink = sgs_trace::MemorySink::new();
        let traced = ssta_traced(&c, &lib(), &s, None, sgs_trace::Tracer::new(&sink));
        assert_eq!(plain.delay, traced.delay);
        assert!(sink.span_seconds("ssta") >= 0.0);
        assert_eq!(
            sink.count(|e| matches!(
                e,
                sgs_trace::TraceEvent::Counter {
                    name: "ssta_gates",
                    value: 7
                }
            )),
            1
        );
        // Disabled tracer: identical result, empty trace path.
        let untraced = ssta_traced(&c, &lib(), &s, None, sgs_trace::Tracer::none());
        assert_eq!(plain.delay, untraced.delay);
    }
}
