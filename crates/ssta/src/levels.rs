//! The shared counting-sort level schedule.
//!
//! Both consumers of topological levels — the level-batched SoA sweep
//! ([`crate::soa::LevelSweeper`]) and the incremental engine's dirty-cone
//! drain ([`crate::incremental::IncrementalSsta`]) — used to build their
//! own ordering over `Circuit::levels()`. This module extracts the
//! counting-sort CSR construction into one [`LevelSchedule`] so there is
//! exactly one level-schedule implementation for the stage-4 determinism
//! certifier (`sgs-analyze`) to certify: the schedule's per-level gate
//! sets are the write partition of the levelized sweep, and proving them
//! disjoint + covering proves it for every consumer at once.
//!
//! The construction is a stable counting sort: gates are bucketed by
//! level and, within a level, kept in ascending gate-id order (ids are
//! visited in order). Both properties are load-bearing — level order is
//! the dependency order of the sweep, and ascending ids within a level
//! fix the fold order the bit-identity contract pins.

use sgs_netlist::Circuit;

/// Gates grouped by topological level in CSR form.
///
/// `order` holds every gate id exactly once, grouped by level;
/// `level_ptr` holds the CSR starts (one entry per level plus the end
/// sentinel), so level `l` owns `order[level_ptr[l]..level_ptr[l + 1]]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSchedule {
    /// Topological level of each gate, indexed by gate id.
    level_of: Vec<usize>,
    /// CSR starts into `order`, one entry per level plus the end sentinel.
    level_ptr: Vec<usize>,
    /// Gate ids grouped by level, ascending within each level.
    order: Vec<usize>,
}

impl LevelSchedule {
    /// Counting-sorts `level_of` (gate id → topological level) into the
    /// CSR schedule. Stable: within a level, gate ids stay ascending.
    pub fn from_levels(level_of: Vec<usize>) -> Self {
        let depth = level_of.iter().copied().max().unwrap_or(0);
        let mut level_ptr = vec![0usize; depth + 2];
        for &l in &level_of {
            level_ptr[l + 1] += 1;
        }
        for l in 0..=depth {
            level_ptr[l + 1] += level_ptr[l];
        }
        let mut next = level_ptr.clone();
        let mut order = vec![0usize; level_of.len()];
        // Ascending gate ids within a level: ids are visited in order.
        for (i, &l) in level_of.iter().enumerate() {
            order[next[l]] = i;
            next[l] += 1;
        }
        LevelSchedule {
            level_of,
            level_ptr,
            order,
        }
    }

    /// Builds the schedule for `circuit` from its topological levels.
    pub fn for_circuit(circuit: &Circuit) -> Self {
        Self::from_levels(circuit.levels())
    }

    /// Number of levels (including empty ones up to the deepest gate).
    pub fn num_levels(&self) -> usize {
        self.level_ptr.len() - 1
    }

    /// Number of scheduled gates (the circuit's gate count).
    pub fn num_gates(&self) -> usize {
        self.order.len()
    }

    /// Topological level of gate `g`.
    #[inline]
    pub fn level_of(&self, g: usize) -> usize {
        self.level_of[g]
    }

    /// CSR starts into [`LevelSchedule::order`], one per level plus the
    /// end sentinel.
    pub fn level_ptr(&self) -> &[usize] {
        &self.level_ptr
    }

    /// Gate ids grouped by level, ascending within each level.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The gate ids of level `l`.
    #[inline]
    pub fn level(&self, l: usize) -> &[usize] {
        &self.order[self.level_ptr[l]..self.level_ptr[l + 1]]
    }

    /// Width of the widest level.
    pub fn widest(&self) -> usize {
        (0..self.num_levels())
            .map(|l| self.level_ptr[l + 1] - self.level_ptr[l])
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_netlist::generate;

    #[test]
    fn schedule_partitions_gates_by_level() {
        for c in [
            generate::tree7(),
            generate::inverter_chain(9),
            generate::ripple_carry_adder(16),
        ] {
            let sched = LevelSchedule::for_circuit(&c);
            let levels = c.levels();
            assert_eq!(sched.num_gates(), c.num_gates());
            // Every gate appears exactly once, in its own level's range,
            // ascending within the level.
            let mut seen = vec![false; c.num_gates()];
            for l in 0..sched.num_levels() {
                let gates = sched.level(l);
                for w in gates.windows(2) {
                    assert!(w[0] < w[1], "ascending ids within level {l}");
                }
                for &g in gates {
                    assert_eq!(levels[g], l);
                    assert_eq!(sched.level_of(g), l);
                    assert!(!seen[g], "gate {g} scheduled twice");
                    seen[g] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "coverage");
            assert!(sched.widest() >= 1);
        }
    }

    #[test]
    fn empty_circuit_schedule_is_empty() {
        let sched = LevelSchedule::from_levels(Vec::new());
        assert_eq!(sched.num_gates(), 0);
        assert_eq!(sched.widest(), 0);
        assert_eq!(sched.num_levels(), 1);
        assert!(sched.level(0).is_empty());
    }
}
