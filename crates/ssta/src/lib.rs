//! Statistical static timing analysis on sized gate-level circuits.
//!
//! Implements the timing machinery of the DATE 2000 statistical gate-sizing
//! paper (Sections 2–4):
//!
//! * [`delay`] — the sizable-gate delay model evaluated for a concrete
//!   vector of speed factors: `mu_t = t_int + c (C_load + sum C_in S_j) /
//!   S`, `sigma_t = 0.25 mu_t`;
//! * [`analysis`] — forward propagation of normal arrival times through the
//!   circuit DAG using the analytical stochastic max (paper Eq. 1–4 with
//!   Eqs. 10/12/13), plus the traditional deterministic STA the statistical
//!   treatment replaces;
//! * [`mod@monte_carlo`] — sampling-based timing used to validate the
//!   analytical analysis and to estimate yield (`P(delay <= T)`) and gate
//!   criticality;
//! * [`power`] — zero-delay switching activities and the linear power
//!   weights the paper's weighted-area objective uses to size for power;
//! * [`canonical`] — correlation-aware SSTA in canonical first-order form,
//!   implementing the paper's stated future work on reconvergent-path
//!   correlations;
//! * [`criticality`] — analytic path-criticality probabilities from Clark
//!   tightness, validated against Monte Carlo;
//! * [`incremental`] — dirty-cone re-propagation after size changes,
//!   bit-identical to a from-scratch run (the what-if query engine);
//! * [`soa`] — structure-of-arrays arrival storage and the level-batched
//!   Clark-max sweep shared by the full, parallel and incremental paths;
//! * [`wire`] — per-edge statistical wire delays, the paper's general
//!   delay model of Fig. 1 / Eq. 2.
//!
//! # Example
//!
//! ```
//! use sgs_netlist::{generate, Library};
//! use sgs_ssta::analysis;
//!
//! let circuit = generate::tree7();
//! let lib = Library::paper_default();
//! let s = vec![1.0; circuit.num_gates()];
//! let report = analysis::ssta(&circuit, &lib, &s);
//! assert!(report.delay.mean() > 0.0);
//! assert!(report.delay.sigma() > 0.0);
//! ```

pub mod analysis;
pub mod canonical;
pub mod criticality;
pub mod delay;
pub mod incremental;
pub mod levels;
pub mod monte_carlo;
pub mod power;
pub mod soa;
pub mod wire;

pub use analysis::{
    ssta, ssta_levelized, ssta_traced, ssta_with_model, ssta_with_model_and_arrivals,
    sta_deterministic, sta_deterministic_with_model, SstaReport,
};
pub use delay::DelayModel;
pub use incremental::{IncrementalSsta, UpdateStats};
pub use levels::LevelSchedule;
pub use monte_carlo::{
    monte_carlo, monte_carlo_traced, monte_carlo_with_model, McOptions, McPartition, McReport,
};
pub use soa::{ArrivalRead, ArrivalSoa, LevelSweeper, LEVEL_CHUNK};
