//! Structure-of-arrays arrival storage and the level-batched sweep.
//!
//! The levelized propagation used to hop through per-gate [`Normal`]
//! structs and collect each level into a freshly allocated vector. This
//! module replaces that layout with contiguous `(mu, var)` arrays — one
//! pair for the circuit-wide arrival state ([`ArrivalSoa`]), one pair per
//! in-flight level — so a whole level's stochastic-max folds stream
//! through [`sgs_statmath::clark::max_batch`] instead of calling the
//! scalar kernel gate by gate. The same storage backs all three
//! propagation paths (sequential full pass, level-parallel pass, and the
//! incremental engine's dirty-cone updates), which read it through the
//! [`ArrivalRead`] abstraction.
//!
//! # Bit-identity
//!
//! Every lane of `max_batch` performs exactly the scalar
//! [`sgs_statmath::clark::max_eps`] operations, and the sweep folds each
//! gate's fan-ins in the same left-to-right order as
//! [`crate::analysis::gate_arrival`]. Chunking a level — for parallelism
//! or for the unrolled kernel — regroups *calls*, never the per-lane
//! arithmetic, so sequential, batched and parallel-batched sweeps produce
//! identical bits. `tests/integration_parallel.rs` and the proptest
//! oracle in `sgs-statmath` pin this.

use crate::analysis::arrival_of;
use crate::delay::DelayModel;
use crate::levels::LevelSchedule;
use rayon::prelude::*;
use sgs_netlist::{Circuit, GateId};
use sgs_statmath::{clark, Normal};

/// Read access to per-gate arrival distributions, indexed by gate id.
///
/// Lets the pure propagation functions ([`crate::analysis::gate_arrival`]
/// and friends) run unchanged over both the legacy array-of-structs form
/// (`[Normal]`, as held in an [`crate::SstaReport`]) and the contiguous
/// [`ArrivalSoa`] the sweeps and the incremental engine use internally.
pub trait ArrivalRead {
    /// Arrival distribution at gate `idx`.
    fn arrival(&self, idx: usize) -> Normal;
}

impl ArrivalRead for [Normal] {
    #[inline]
    fn arrival(&self, idx: usize) -> Normal {
        self[idx]
    }
}

impl ArrivalRead for Vec<Normal> {
    #[inline]
    fn arrival(&self, idx: usize) -> Normal {
        self[idx]
    }
}

/// Per-gate arrival moments in structure-of-arrays layout: one contiguous
/// mean array and one contiguous variance array, indexed by gate id.
///
/// This is the shared arrival storage of the analysis paths. Splitting
/// the [`Normal`] pair is lossless — the type stores `(mean, var)` — and
/// the flat arrays are what the batched Clark kernel gathers from and
/// scatters to without per-gate struct hops.
#[derive(Debug, Clone, Default)]
pub struct ArrivalSoa {
    mu: Vec<f64>,
    var: Vec<f64>,
}

impl ArrivalSoa {
    /// Empty storage with room for `n` gates.
    pub fn with_capacity(n: usize) -> Self {
        ArrivalSoa {
            mu: Vec::with_capacity(n),
            var: Vec::with_capacity(n),
        }
    }

    /// Zero-arrival storage for `n` gates.
    pub fn zeroed(n: usize) -> Self {
        ArrivalSoa {
            mu: vec![0.0; n],
            var: vec![0.0; n],
        }
    }

    /// Number of gates stored.
    pub fn len(&self) -> usize {
        self.mu.len()
    }

    /// Whether no arrivals are stored.
    pub fn is_empty(&self) -> bool {
        self.mu.is_empty()
    }

    /// Appends one arrival.
    pub fn push(&mut self, a: Normal) {
        self.mu.push(a.mean());
        self.var.push(a.var());
    }

    /// The arrival at gate `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> Normal {
        Normal::from_mean_var(self.mu[idx], self.var[idx])
    }

    /// Overwrites the arrival at gate `idx`.
    #[inline]
    pub fn set(&mut self, idx: usize, a: Normal) {
        self.mu[idx] = a.mean();
        self.var[idx] = a.var();
    }

    /// Raw moment write, used by the sweep's scatter loop.
    #[inline]
    pub(crate) fn set_raw(&mut self, idx: usize, mu: f64, var: f64) {
        self.mu[idx] = mu;
        self.var[idx] = var;
    }

    /// Iterates the stored arrivals in gate order.
    pub fn iter(&self) -> impl Iterator<Item = Normal> + '_ {
        self.mu
            .iter()
            .zip(&self.var)
            .map(|(&m, &v)| Normal::from_mean_var(m, v))
    }

    /// The contiguous mean array.
    pub fn mu(&self) -> &[f64] {
        &self.mu
    }

    /// The contiguous variance array.
    pub fn var(&self) -> &[f64] {
        &self.var
    }

    /// Converts to the array-of-structs form used in reports.
    pub fn to_normals(&self) -> Vec<Normal> {
        self.iter().collect()
    }
}

impl ArrivalRead for ArrivalSoa {
    #[inline]
    fn arrival(&self, idx: usize) -> Normal {
        Normal::from_mean_var(self.mu[idx], self.var[idx])
    }
}

/// Gates handed to one batched work unit. Also the split width of the
/// level-parallel path: chunk boundaries regroup kernel calls, never
/// per-lane arithmetic, so the chunking cannot affect results. Public so
/// the write-plan introspection layer (`sgs-core::plan`) describes the
/// exact partition the sweep executes.
pub const LEVEL_CHUNK: usize = 256;

/// Scratch for one batched work unit: fold accumulators plus the
/// gather/output quads fed to [`clark::max_batch`]. All buffers are
/// reused across levels and sweeps.
#[derive(Debug, Clone, Default)]
struct ChunkScratch {
    acc_mu: Vec<f64>,
    acc_var: Vec<f64>,
    a_mu: Vec<f64>,
    a_var: Vec<f64>,
    b_mu: Vec<f64>,
    b_var: Vec<f64>,
    o_mu: Vec<f64>,
    o_var: Vec<f64>,
    /// Chunk-local positions still folding at the current fan-in round.
    sub: Vec<usize>,
}

impl ChunkScratch {
    fn ensure(&mut self, n: usize) {
        if self.acc_mu.len() < n {
            for v in [
                &mut self.acc_mu,
                &mut self.acc_var,
                &mut self.a_mu,
                &mut self.a_var,
                &mut self.b_mu,
                &mut self.b_var,
                &mut self.o_mu,
                &mut self.o_var,
            ] {
                v.resize(n, 0.0);
            }
            self.sub.reserve(n.saturating_sub(self.sub.capacity()));
        }
    }
}

/// Level-batched arrival sweep over one circuit.
///
/// Construction groups the gates by topological level into one flat
/// index array (a CSR over levels) and allocates every scratch buffer the
/// sweep needs; [`LevelSweeper::sweep`] then propagates arrivals for any
/// speed vector without further allocation. Large levels are split into
/// [`LEVEL_CHUNK`]-gate work units processed in parallel when more than
/// one rayon thread is available.
#[derive(Debug)]
pub struct LevelSweeper {
    /// The shared counting-sort level schedule (the write partition the
    /// stage-4 certifier proves disjoint + covering).
    schedule: LevelSchedule,
    /// Per-level contiguous output moments (sized to the widest level).
    out_mu: Vec<f64>,
    out_var: Vec<f64>,
    /// Whole-level scratch for the sequential path.
    whole: ChunkScratch,
    /// Per-chunk scratch pool for the parallel path.
    chunks: Vec<ChunkScratch>,
    /// Planted fault: position in the schedule's `order` whose gate a
    /// second parallel unit falsely claims (plan + shadow stamps).
    corrupt_dup: Option<usize>,
}

impl LevelSweeper {
    /// Builds the level schedule and scratch for `circuit`.
    pub fn new(circuit: &Circuit) -> Self {
        let schedule = LevelSchedule::for_circuit(circuit);
        let widest = schedule.widest();
        let mut whole = ChunkScratch::default();
        whole.ensure(widest);
        let nchunks = widest.div_ceil(LEVEL_CHUNK.max(1));
        let mut chunks = vec![ChunkScratch::default(); nchunks];
        for c in &mut chunks {
            c.ensure(LEVEL_CHUNK);
        }
        LevelSweeper {
            schedule,
            out_mu: vec![0.0; widest],
            out_var: vec![0.0; widest],
            whole,
            chunks,
            corrupt_dup: None,
        }
    }

    /// The level schedule this sweeper executes.
    pub fn schedule(&self) -> &LevelSchedule {
        &self.schedule
    }

    /// Fault-injection hook for the stage-4 mutation battery: makes a
    /// second parallel unit claim the gate at schedule-order position
    /// `pos`, both in the declared write plan and in the shadow-write
    /// stamps. Test-only; never used by the production sweep itself.
    #[doc(hidden)]
    pub fn corrupt_overlap_gate(&mut self, pos: usize) {
        assert!(pos < self.schedule.num_gates(), "corrupt position in range");
        self.corrupt_dup = Some(pos);
    }

    /// The planted [`LevelSweeper::corrupt_overlap_gate`] position, if
    /// any (read by the write-plan layer).
    #[doc(hidden)]
    pub fn corrupt_overlap(&self) -> Option<usize> {
        self.corrupt_dup
    }

    /// Propagates arrivals for speed vector `s` into `arrivals`, level by
    /// level. `arrivals` must hold one slot per gate (earlier contents
    /// are overwritten in dependency order). Bit-identical to the
    /// sequential per-gate fold at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals.len() != circuit.num_gates()`.
    pub fn sweep(
        &mut self,
        circuit: &Circuit,
        model: &DelayModel,
        s: &[f64],
        input_arrivals: Option<&[Normal]>,
        arrivals: &mut ArrivalSoa,
    ) {
        assert_eq!(
            arrivals.len(),
            circuit.num_gates(),
            "arrival storage length mismatch"
        );
        let LevelSweeper {
            schedule,
            out_mu,
            out_var,
            whole,
            chunks,
            corrupt_dup,
        } = self;
        #[cfg(feature = "shadow-write")]
        let shadow = sgs_trace::shadow::begin("level_sweep", schedule.num_gates());
        #[cfg(feature = "shadow-write")]
        if let Some(pos) = *corrupt_dup {
            // Planted race: a phantom second unit claims this gate.
            shadow.stamp(u32::MAX, schedule.order()[pos]);
        }
        #[cfg(not(feature = "shadow-write"))]
        let _ = corrupt_dup;
        let parallel = rayon::current_num_threads() > 1;
        // Global parallel-unit counter across levels, matching the unit
        // numbering of the declared write plan.
        let mut unit0 = 0u32;
        for l in 0..schedule.num_levels() {
            let gates = schedule.level(l);
            let m = gates.len();
            if m == 0 {
                continue;
            }
            let out_mu = &mut out_mu[..m];
            let out_var = &mut out_var[..m];
            let nchunks = m.div_ceil(LEVEL_CHUNK);
            if parallel && m > LEVEL_CHUNK {
                let read: &ArrivalSoa = arrivals;
                #[cfg(feature = "shadow-write")]
                let shadow = &shadow;
                chunks[..nchunks]
                    .par_iter_mut()
                    .zip(out_mu.par_chunks_mut(LEVEL_CHUNK))
                    .zip(out_var.par_chunks_mut(LEVEL_CHUNK))
                    .enumerate()
                    .for_each(|(ci, ((scr, omu), ovar))| {
                        let start = ci * LEVEL_CHUNK;
                        let gs = &gates[start..start + omu.len()];
                        #[cfg(feature = "shadow-write")]
                        for &g in gs {
                            shadow.stamp(unit0 + ci as u32, g);
                        }
                        sweep_chunk(circuit, model, s, read, input_arrivals, gs, scr, omu, ovar);
                    });
            } else {
                #[cfg(feature = "shadow-write")]
                for (j, &g) in gates.iter().enumerate() {
                    shadow.stamp(unit0 + (j / LEVEL_CHUNK) as u32, g);
                }
                sweep_chunk(
                    circuit,
                    model,
                    s,
                    arrivals,
                    input_arrivals,
                    gates,
                    whole,
                    out_mu,
                    out_var,
                );
            }
            for (j, &g) in gates.iter().enumerate() {
                arrivals.set_raw(g, out_mu[j], out_var[j]);
            }
            unit0 += nchunks as u32;
        }
        let _ = unit0;
    }
}

/// Folds one chunk of a level: gathers fan-in moments round by round,
/// runs each round through the batched Clark kernel, then adds the gate
/// delays. Round `r` combines each still-folding gate's accumulator with
/// its `r`-th fan-in — the same left fold, gate by gate, as the scalar
/// [`crate::analysis::gate_arrival`].
#[allow(clippy::too_many_arguments)]
fn sweep_chunk(
    circuit: &Circuit,
    model: &DelayModel,
    s: &[f64],
    arrivals: &ArrivalSoa,
    input_arrivals: Option<&[Normal]>,
    gates: &[usize],
    scr: &mut ChunkScratch,
    out_mu: &mut [f64],
    out_var: &mut [f64],
) {
    let m = gates.len();
    scr.ensure(m);
    let ChunkScratch {
        acc_mu,
        acc_var,
        a_mu,
        a_var,
        b_mu,
        b_var,
        o_mu,
        o_var,
        sub,
    } = scr;
    for (j, &g) in gates.iter().enumerate() {
        let first = arrival_of(circuit.gate(GateId(g)).inputs[0], arrivals, input_arrivals);
        acc_mu[j] = first.mean();
        acc_var[j] = first.var();
    }
    let mut round = 1;
    loop {
        sub.clear();
        for (j, &g) in gates.iter().enumerate() {
            if circuit.gate(GateId(g)).inputs.len() > round {
                sub.push(j);
            }
        }
        if sub.is_empty() {
            break;
        }
        let k = sub.len();
        for (t, &j) in sub.iter().enumerate() {
            a_mu[t] = acc_mu[j];
            a_var[t] = acc_var[j];
            let b = arrival_of(
                circuit.gate(GateId(gates[j])).inputs[round],
                arrivals,
                input_arrivals,
            );
            b_mu[t] = b.mean();
            b_var[t] = b.var();
        }
        clark::max_batch(
            &a_mu[..k],
            &a_var[..k],
            &b_mu[..k],
            &b_var[..k],
            clark::DEFAULT_EPS,
            &mut o_mu[..k],
            &mut o_var[..k],
        );
        for (t, &j) in sub.iter().enumerate() {
            acc_mu[j] = o_mu[t];
            acc_var[j] = o_var[t];
        }
        round += 1;
    }
    for (j, &g) in gates.iter().enumerate() {
        let d = model.gate_delay(GateId(g), s);
        out_mu[j] = acc_mu[j] + d.mean();
        out_var[j] = acc_var[j] + d.var();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_netlist::{generate, Library};

    fn lib() -> Library {
        Library::paper_default()
    }

    fn assert_soa_matches_sequential(circuit: &Circuit, s: &[f64]) {
        let model = DelayModel::new(circuit, &lib());
        let seq = crate::analysis::arrivals_sequential(circuit, &model, s, None);
        let mut sweeper = LevelSweeper::new(circuit);
        let mut soa = ArrivalSoa::zeroed(circuit.num_gates());
        sweeper.sweep(circuit, &model, s, None, &mut soa);
        for i in 0..circuit.num_gates() {
            assert_eq!(
                soa.mu()[i].to_bits(),
                seq.mu()[i].to_bits(),
                "mu of gate {i}"
            );
            assert_eq!(
                soa.var()[i].to_bits(),
                seq.var()[i].to_bits(),
                "var of gate {i}"
            );
        }
    }

    #[test]
    fn sweep_bitwise_matches_sequential_fold() {
        for c in [
            generate::tree7(),
            generate::inverter_chain(9),
            generate::ripple_carry_adder(16),
        ] {
            let s: Vec<f64> = (0..c.num_gates()).map(|i| 1.0 + 0.03 * i as f64).collect();
            assert_soa_matches_sequential(&c, &s);
        }
    }

    #[test]
    fn sweep_is_reusable_across_speed_vectors() {
        let c = generate::ripple_carry_adder(10);
        let n = c.num_gates();
        let model = DelayModel::new(&c, &lib());
        let mut sweeper = LevelSweeper::new(&c);
        let mut soa = ArrivalSoa::zeroed(n);
        for step in 0..4 {
            let s: Vec<f64> = (0..n)
                .map(|i| 1.0 + 0.1 * ((i + step) % 5) as f64)
                .collect();
            sweeper.sweep(&c, &model, &s, None, &mut soa);
            let seq = crate::analysis::arrivals_sequential(&c, &model, &s, None);
            for i in 0..n {
                assert_eq!(soa.mu()[i].to_bits(), seq.mu()[i].to_bits(), "step {step}");
            }
        }
    }

    #[test]
    fn soa_roundtrips_normals() {
        let mut soa = ArrivalSoa::with_capacity(3);
        let xs = [
            Normal::new(1.0, 0.5),
            Normal::new(2.0, 0.0),
            Normal::from_mean_var(3.0, 9.0),
        ];
        for &x in &xs {
            soa.push(x);
        }
        assert_eq!(soa.len(), 3);
        assert!(!soa.is_empty());
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(soa.get(i), x);
            assert_eq!(soa.arrival(i), x);
        }
        soa.set(1, xs[2]);
        assert_eq!(soa.get(1), xs[2]);
        assert_eq!(soa.to_normals()[0], xs[0]);
    }
}
