//! Incremental SSTA: dirty-cone re-propagation that is bit-identical to a
//! from-scratch run.
//!
//! The paper's analytical stochastic maximum makes every arrival moment a
//! deterministic function of the speed vector, so when only a few sizes
//! change, only the affected cones can change. [`IncrementalSsta`] keeps
//! the last arrival per gate and the last circuit delay, accepts a set of
//! changed sizes, and recomputes just the gates whose delay or fan-in
//! arrivals may differ.
//!
//! # Dirty seeding under load coupling
//!
//! A gate's delay `mu_t = t_int + c (C_load + sum C_in,j S_j) / S` depends
//! on its **own** size and, through the load sum, on the sizes of its
//! **fanout** gates. Changing `S_g` therefore dirties gate `g` *and every
//! gate that drives `g`* (gates whose fanout list contains `g`); arrival
//! changes then propagate forward through fanout cones via the worklist.
//!
//! # Bit-identity contract
//!
//! Dirty gates are drained level by level through the shared
//! [`LevelSchedule`] — the same counting-sort schedule the levelized
//! sweep executes, so the stage-4 determinism certifier covers both
//! consumers by certifying one schedule. Fan-ins sit at strictly lower
//! levels, so every dirty fan-in settles before its reader, and each
//! recomputation calls the *same* pure [`gate_arrival`] left fold the full
//! analysis uses — identical operands in identical order give identical
//! bits. Early termination is exact, not tolerance-based: propagation
//! stops through a gate only when its recomputed `(mean, var)` is
//! **bitwise unchanged**, in which case every downstream quantity reads
//! exactly the operands it read before and cannot change either. The
//! output max fold is re-run only when some primary-output arrival
//! changed, again through the shared [`delay_from_arrivals`]. The
//! differential oracle battery in `tests/oracle_incremental.rs` pins this
//! contract with `to_bits()` equality against fresh [`crate::ssta`] runs.

use crate::analysis::{arrivals_sequential, delay_from_arrivals, gate_arrival, SstaReport};
use crate::delay::DelayModel;
use crate::levels::LevelSchedule;
use crate::soa::ArrivalSoa;
use sgs_netlist::{Circuit, GateId, Library, Signal};
use sgs_statmath::{clark, Normal};

/// Work accounting for one [`IncrementalSsta::set_sizes`] /
/// [`IncrementalSsta::apply`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Gates whose arrival was recomputed (the dirty-cone size). A no-op
    /// perturbation — every new size bitwise equal to the old — is `0`.
    pub gates_recomputed: usize,
    /// Of those, gates whose recomputed arrival was bitwise unchanged, so
    /// the frontier did not expand through them.
    pub frontier_pruned: usize,
    /// Whether a primary-output arrival changed and the circuit-delay max
    /// fold was re-run.
    pub delay_refolded: bool,
}

/// Incremental statistical timing engine over one circuit.
///
/// Holds the last speed vector, per-gate arrivals and circuit delay;
/// [`IncrementalSsta::apply`] moves all of them to a new speed vector by
/// recomputing only the dirty cone. State after any update sequence is
/// bit-identical to [`crate::ssta`] at the same sizes.
///
/// # Example
///
/// ```
/// use sgs_netlist::{generate, Library};
/// use sgs_ssta::{ssta, IncrementalSsta};
///
/// let c = generate::tree7();
/// let lib = Library::paper_default();
/// let mut inc = IncrementalSsta::new(&c, &lib, &vec![1.0; 7]);
/// let stats = inc.apply(&[(sgs_netlist::GateId(0), 2.0)]);
/// assert!(stats.gates_recomputed < 7);
/// let mut s = vec![1.0; 7];
/// s[0] = 2.0;
/// let fresh = ssta(&c, &lib, &s);
/// assert_eq!(inc.delay(), fresh.delay);
/// ```
pub struct IncrementalSsta<'a> {
    circuit: &'a Circuit,
    model: DelayModel,
    fanouts: Vec<Vec<GateId>>,
    input_arrivals: Option<Vec<Normal>>,
    s: Vec<f64>,
    /// Per-gate arrival moments in the shared structure-of-arrays layout.
    arrivals: ArrivalSoa,
    delay: Normal,
    /// Scratch membership flags for the worklist (all false between calls).
    dirty: Vec<bool>,
    /// The shared counting-sort level schedule that orders the dirty
    /// drain (fan-ins sit at strictly lower levels).
    schedule: LevelSchedule,
    /// Per-level dirty worklist bins, reused across calls (all empty
    /// between calls).
    level_bins: Vec<Vec<usize>>,
    /// First position of each gate in the output list (`usize::MAX` for
    /// non-outputs).
    out_pos: Vec<usize>,
    /// Running left-fold accumulators of the output max chain:
    /// `out_prefix[i]` is `max_n(outputs[0..=i])`, so the circuit delay is
    /// the last entry and a change in output position `p` only needs the
    /// fold re-run from `p` on (the prefix before `p` is bitwise the same
    /// values the full fold would produce).
    out_prefix: Vec<Normal>,
    updates: u64,
    total_recomputed: u64,
}

/// Bitwise state equality — the exact early-termination predicate.
#[inline]
fn same_bits(a: Normal, b: Normal) -> bool {
    a.mean().to_bits() == b.mean().to_bits() && a.var().to_bits() == b.var().to_bits()
}

impl<'a> IncrementalSsta<'a> {
    /// Builds the engine with one full (sequential, left-fold) pass at
    /// speed vector `s` and zero-arrival primary inputs.
    ///
    /// # Panics
    ///
    /// Panics if `s.len() != circuit.num_gates()`.
    pub fn new(circuit: &'a Circuit, lib: &Library, s: &[f64]) -> Self {
        Self::with_arrivals(circuit, lib, s, None)
    }

    /// [`IncrementalSsta::new`] with explicit primary-input arrival
    /// distributions.
    ///
    /// # Panics
    ///
    /// Panics if `s.len() != circuit.num_gates()` or the arrival slice
    /// length differs from the input count.
    pub fn with_arrivals(
        circuit: &'a Circuit,
        lib: &Library,
        s: &[f64],
        input_arrivals: Option<&[Normal]>,
    ) -> Self {
        assert_eq!(s.len(), circuit.num_gates(), "speed vector length mismatch");
        if let Some(ia) = input_arrivals {
            assert_eq!(
                ia.len(),
                circuit.num_inputs(),
                "input arrival length mismatch"
            );
        }
        let model = DelayModel::new(circuit, lib);
        let arrivals = arrivals_sequential(circuit, &model, s, input_arrivals);
        let n = circuit.num_gates();
        let mut out_pos = vec![usize::MAX; n];
        let mut out_prefix = Vec::with_capacity(circuit.outputs().len());
        for (p, &o) in circuit.outputs().iter().enumerate() {
            out_pos[o.index()] = out_pos[o.index()].min(p);
            let a = arrivals.get(o.index());
            out_prefix.push(match out_prefix.last() {
                Some(&acc) => clark::max(acc, a),
                None => a,
            });
        }
        let delay = *out_prefix.last().expect("validated circuits have outputs");
        debug_assert_eq!(
            delay.mean().to_bits(),
            delay_from_arrivals(circuit, &arrivals).mean().to_bits(),
            "prefix fold must replay the full output fold exactly"
        );
        let schedule = LevelSchedule::for_circuit(circuit);
        let level_bins = vec![Vec::new(); schedule.num_levels()];
        IncrementalSsta {
            circuit,
            model,
            fanouts: circuit.fanouts(),
            input_arrivals: input_arrivals.map(<[Normal]>::to_vec),
            s: s.to_vec(),
            arrivals,
            delay,
            dirty: vec![false; n],
            schedule,
            level_bins,
            out_pos,
            out_prefix,
            updates: 0,
            total_recomputed: 0,
        }
    }

    /// The level schedule ordering this engine's dirty drain (the same
    /// schedule instance family the levelized sweep executes).
    pub fn schedule(&self) -> &LevelSchedule {
        &self.schedule
    }

    /// Applies a set of size changes and re-propagates the dirty cone.
    ///
    /// Changes whose new size is bitwise equal to the current one are
    /// skipped entirely (they cannot move any moment). Later entries for
    /// the same gate override earlier ones.
    ///
    /// # Panics
    ///
    /// Panics if a gate id is out of range.
    pub fn apply(&mut self, changes: &[(GateId, f64)]) -> UpdateStats {
        let mut min_level = usize::MAX;
        for &(g, v) in changes {
            let gi = g.index();
            if v.to_bits() == self.s[gi].to_bits() {
                continue;
            }
            self.s[gi] = v;
            // The changed gate's own delay moves, and — load coupling —
            // so does the delay of every gate driving it.
            if !self.dirty[gi] {
                self.dirty[gi] = true;
                self.level_bins[self.schedule.level_of(gi)].push(gi);
                min_level = min_level.min(self.schedule.level_of(gi));
            }
            for &sig in &self.circuit.gate(g).inputs {
                if let Signal::Gate(src) = sig {
                    let si = src.index();
                    if !self.dirty[si] {
                        self.dirty[si] = true;
                        self.level_bins[self.schedule.level_of(si)].push(si);
                        min_level = min_level.min(self.schedule.level_of(si));
                    }
                }
            }
        }

        let mut stats = UpdateStats::default();
        let mut first_changed_out = usize::MAX;
        // Level order is dependency order: by the time a level drains,
        // every dirty fan-in (strictly lower level) has settled, and
        // processing only ever pushes fanouts (strictly higher levels),
        // so no gate is visited twice. Within a level gates are
        // independent; draining them in ascending id keeps the stats and
        // trace deterministic.
        let mut l = if min_level == usize::MAX {
            self.level_bins.len()
        } else {
            min_level
        };
        while l < self.level_bins.len() {
            let mut bin = std::mem::take(&mut self.level_bins[l]);
            bin.sort_unstable();
            for idx in bin.drain(..) {
                self.dirty[idx] = false;
                let a = gate_arrival(
                    self.circuit,
                    &self.model,
                    &self.s,
                    &self.arrivals,
                    self.input_arrivals.as_deref(),
                    idx,
                );
                stats.gates_recomputed += 1;
                if same_bits(a, self.arrivals.get(idx)) {
                    // Exactly unchanged: everything downstream reads the
                    // same operands as before, so the frontier stops here.
                    stats.frontier_pruned += 1;
                    continue;
                }
                self.arrivals.set(idx, a);
                first_changed_out = first_changed_out.min(self.out_pos[idx]);
                for &f in &self.fanouts[idx] {
                    let fi = f.index();
                    if !self.dirty[fi] {
                        self.dirty[fi] = true;
                        self.level_bins[self.schedule.level_of(fi)].push(fi);
                    }
                }
            }
            // Hand the (now empty) bin back so its capacity is reused.
            self.level_bins[l] = bin;
            l += 1;
        }
        if first_changed_out != usize::MAX {
            // Resume the output max fold at the first changed position:
            // every accumulator before it folds bitwise-identical operands,
            // so the suffix recomputation reproduces the full fold exactly.
            let outputs = self.circuit.outputs();
            for (p, o) in outputs.iter().enumerate().skip(first_changed_out) {
                let a = self.arrivals.get(o.index());
                self.out_prefix[p] = if p == 0 {
                    a
                } else {
                    clark::max(self.out_prefix[p - 1], a)
                };
            }
            self.delay = *self.out_prefix.last().expect("outputs are non-empty");
            stats.delay_refolded = true;
        }
        self.updates += 1;
        self.total_recomputed += stats.gates_recomputed as u64;
        {
            use sgs_metrics::{add, incr, observe, Counter, HistId};
            incr(Counter::SstaIncrementalUpdates);
            add(Counter::SstaGatesRecomputed, stats.gates_recomputed as u64);
            add(Counter::SstaFrontierPruned, stats.frontier_pruned as u64);
            observe(HistId::SstaIncrementalGates, stats.gates_recomputed as f64);
        }
        stats
    }

    /// Moves the engine to a full speed vector, diffing against the
    /// current one bitwise and applying only the changed entries.
    ///
    /// # Panics
    ///
    /// Panics if `s.len() != circuit.num_gates()`.
    pub fn set_sizes(&mut self, s: &[f64]) -> UpdateStats {
        assert_eq!(s.len(), self.s.len(), "speed vector length mismatch");
        let changes: Vec<(GateId, f64)> = s
            .iter()
            .enumerate()
            .filter(|(i, v)| v.to_bits() != self.s[*i].to_bits())
            .map(|(i, &v)| (GateId(i), v))
            .collect();
        self.apply(&changes)
    }

    /// The circuit this engine analyses.
    pub fn circuit(&self) -> &'a Circuit {
        self.circuit
    }

    /// Current speed vector.
    pub fn sizes(&self) -> &[f64] {
        &self.s
    }

    /// Current per-gate arrival moments (indexed by gate id), in the
    /// structure-of-arrays layout shared with the analysis sweeps.
    pub fn arrivals(&self) -> &ArrivalSoa {
        &self.arrivals
    }

    /// Current circuit delay distribution (`(mu_Tmax, sigma_Tmax)`).
    pub fn delay(&self) -> Normal {
        self.delay
    }

    /// Snapshot of the current state as an [`SstaReport`].
    pub fn report(&self) -> SstaReport {
        SstaReport {
            arrivals: self.arrivals.to_normals(),
            delay: self.delay,
        }
    }

    /// Update calls served since construction.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Total gates recomputed across all updates (the counter behind the
    /// `gates_recomputed` trace events the bench bin emits).
    pub fn total_recomputed(&self) -> u64 {
        self.total_recomputed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ssta;
    use sgs_netlist::generate;

    fn lib() -> Library {
        Library::paper_default()
    }

    fn assert_state_matches(inc: &IncrementalSsta<'_>, fresh: &SstaReport) {
        for (i, (a, b)) in inc.arrivals().iter().zip(&fresh.arrivals).enumerate() {
            assert!(same_bits(a, *b), "gate {i}: {a:?} != {b:?}");
        }
        assert!(
            same_bits(inc.delay(), fresh.delay),
            "{:?} != {:?}",
            inc.delay(),
            fresh.delay
        );
    }

    #[test]
    fn single_change_matches_fresh_run() {
        let c = generate::tree7();
        let mut s = vec![1.0; 7];
        let mut inc = IncrementalSsta::new(&c, &lib(), &s);
        s[2] = 1.7;
        inc.apply(&[(GateId(2), 1.7)]);
        assert_state_matches(&inc, &ssta(&c, &lib(), &s));
    }

    #[test]
    fn noop_change_recomputes_nothing() {
        let c = generate::tree7();
        let s = vec![1.25; 7];
        let mut inc = IncrementalSsta::new(&c, &lib(), &s);
        let stats = inc.apply(&[(GateId(3), 1.25), (GateId(0), 1.25)]);
        assert_eq!(stats, UpdateStats::default());
        assert_eq!(inc.set_sizes(&s), UpdateStats::default());
        assert_state_matches(&inc, &ssta(&c, &lib(), &s));
    }

    #[test]
    fn leaf_change_recomputes_strict_subset() {
        // rdag-style circuit: resizing one mid-level gate must not touch
        // the whole circuit.
        let c = generate::ripple_carry_adder(12);
        let n = c.num_gates();
        let mut s = vec![1.0; n];
        let mut inc = IncrementalSsta::new(&c, &lib(), &s);
        s[n - 2] = 2.0;
        let stats = inc.apply(&[(GateId(n - 2), 2.0)]);
        assert!(
            stats.gates_recomputed < n,
            "recomputed {} of {n}",
            stats.gates_recomputed
        );
        assert_state_matches(&inc, &ssta(&c, &lib(), &s));
    }

    #[test]
    fn sequences_and_full_rewrites_stay_identical() {
        let c = generate::ripple_carry_adder(8);
        let n = c.num_gates();
        let mut s = vec![1.0; n];
        let mut inc = IncrementalSsta::new(&c, &lib(), &s);
        for step in 0..10 {
            let g = (step * 5) % n;
            s[g] = 1.0 + 0.15 * (step as f64 + 1.0);
            inc.apply(&[(GateId(g), s[g])]);
            assert_state_matches(&inc, &ssta(&c, &lib(), &s));
        }
        // All-gate rewrite.
        for (i, v) in s.iter_mut().enumerate() {
            *v = 1.0 + (i as f64) * 0.01;
        }
        let stats = inc.set_sizes(&s);
        assert_eq!(stats.gates_recomputed, n);
        assert_state_matches(&inc, &ssta(&c, &lib(), &s));
    }

    #[test]
    fn input_arrivals_carried_through_updates() {
        let c = generate::tree7();
        let late: Vec<Normal> = (0..c.num_inputs())
            .map(|i| Normal::new(i as f64 * 0.5, 0.1))
            .collect();
        let mut s = vec![1.0; 7];
        let mut inc = IncrementalSsta::with_arrivals(&c, &lib(), &s, Some(&late));
        s[1] = 2.2;
        inc.apply(&[(GateId(1), 2.2)]);
        let fresh = crate::analysis::ssta_with_arrivals(&c, &lib(), &s, Some(&late));
        assert_state_matches(&inc, &fresh);
    }
}
