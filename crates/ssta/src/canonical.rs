//! Correlation-aware SSTA in canonical first-order form — the paper's
//! stated future work ("dealing with correlations between stochastic
//! variables in the circuit, as a result of reconverging paths")
//! implemented on top of the same Clark algebra.
//!
//! Every arrival time is kept as a canonical form
//!
//! ```text
//! A = a_0 + sum_g a_g xi_g + a_r xi_r
//! ```
//!
//! with one independent unit normal `xi_g` per gate (the gate's delay
//! uncertainty, `t_g = mu_g + kappa mu_g xi_g`) and a node-private residual
//! `xi_r` absorbing the normality error of each max. Sums add coefficients
//! exactly; the max uses Clark's correlated-operand moments (the
//! correlation follows from the shared coefficients) and Clark's linear
//! covariance propagation: the result's coefficient on `xi_g` is
//! `T a_g + (1 - T) b_g` with `T` the tightness probability.
//!
//! Reconvergent paths share `xi_g` coefficients, so their correlation is
//! carried exactly to first order — removing the pessimism the
//! independence assumption of [`crate::analysis::ssta`] incurs on dense
//! DAGs.

use crate::delay::DelayModel;
use sgs_netlist::{Circuit, Library, Signal};
use sgs_statmath::{clark, Normal};

/// A canonical-form random variable: nominal value, per-gate sensitivity
/// coefficients and an independent residual term.
#[derive(Debug, Clone)]
pub struct CanonicalForm {
    /// Nominal (mean) value.
    pub nominal: f64,
    /// Sensitivity to each gate's unit-normal delay variation.
    pub sens: Vec<f64>,
    /// Standard deviation of the node-private residual component.
    pub resid: f64,
}

impl CanonicalForm {
    /// Variance: `sum a_g^2 + a_r^2`.
    pub fn var(&self) -> f64 {
        self.sens.iter().map(|a| a * a).sum::<f64>() + self.resid * self.resid
    }

    /// The marginal distribution `N(nominal, sqrt(var))`.
    pub fn to_normal(&self) -> Normal {
        Normal::from_mean_var(self.nominal, self.var())
    }

    fn zero(n: usize) -> Self {
        CanonicalForm {
            nominal: 0.0,
            sens: vec![0.0; n],
            resid: 0.0,
        }
    }
}

/// Correlation coefficient between two canonical forms (their shared
/// `xi_g` components; residuals are independent).
pub fn correlation(a: &CanonicalForm, b: &CanonicalForm) -> f64 {
    let cov: f64 = a.sens.iter().zip(&b.sens).map(|(x, y)| x * y).sum();
    let denom = (a.var() * b.var()).sqrt();
    if denom <= 0.0 {
        0.0
    } else {
        (cov / denom).clamp(-1.0, 1.0)
    }
}

/// Clark max of two canonical forms.
fn max_canonical(a: &CanonicalForm, b: &CanonicalForm) -> CanonicalForm {
    let an = a.to_normal();
    let bn = b.to_normal();
    let rho = correlation(a, b);
    let c = clark::max_correlated(an, bn, rho);
    let t = clark::tightness(an, bn, rho);
    // cov(C, xi_i) = T a_i + (1 - T) b_i (Clark's linear covariance).
    let sens: Vec<f64> = a
        .sens
        .iter()
        .zip(&b.sens)
        .map(|(&ai, &bi)| t * ai + (1.0 - t) * bi)
        .collect();
    // Residuals propagate by the same rule, then the total variance is
    // matched by a fresh private residual.
    let carried: f64 = sens.iter().map(|x| x * x).sum::<f64>()
        + (t * a.resid).powi(2)
        + ((1.0 - t) * b.resid).powi(2);
    let resid = (c.var() - carried).max(0.0).sqrt();
    let resid = (resid * resid + (t * a.resid).powi(2) + ((1.0 - t) * b.resid).powi(2)).sqrt();
    CanonicalForm {
        nominal: c.mean(),
        sens,
        resid,
    }
}

/// Result of a canonical (correlation-aware) SSTA.
#[derive(Debug, Clone)]
pub struct CanonicalReport {
    /// Arrival form at each gate output.
    pub arrivals: Vec<CanonicalForm>,
    /// Circuit delay form (max over primary outputs).
    pub delay: CanonicalForm,
}

impl CanonicalReport {
    /// The circuit delay distribution.
    pub fn delay_normal(&self) -> Normal {
        self.delay.to_normal()
    }
}

/// Correlation-aware statistical STA.
///
/// Memory is `O(gates^2)` (one coefficient vector per gate), fine for the
/// few-thousand-gate circuits the paper targets.
///
/// # Panics
///
/// Panics if `s.len() != circuit.num_gates()`.
pub fn ssta_canonical(circuit: &Circuit, lib: &Library, s: &[f64]) -> CanonicalReport {
    assert_eq!(s.len(), circuit.num_gates(), "speed vector length mismatch");
    let model = DelayModel::new(circuit, lib);
    let n = circuit.num_gates();
    let mut arrivals: Vec<CanonicalForm> = Vec::with_capacity(n);

    for (id, gate) in circuit.gates() {
        let g = id.index();
        // Max over fan-in arrivals.
        let mut acc: Option<CanonicalForm> = None;
        for &sig in &gate.inputs {
            let inp = match sig {
                Signal::Pi(_) => CanonicalForm::zero(n),
                Signal::Gate(src) => arrivals[src.index()].clone(),
            };
            acc = Some(match acc {
                None => inp,
                Some(prev) => max_canonical(&prev, &inp),
            });
        }
        let mut u = acc.expect("gates have at least one input");
        // Add the gate delay: mu_t (1 + kappa xi_g).
        let d = model.gate_delay(id, s);
        u.nominal += d.mean();
        u.sens[g] += d.sigma();
        arrivals.push(u);
    }

    let mut delay = arrivals[circuit.outputs()[0].index()].clone();
    for &o in &circuit.outputs()[1..] {
        delay = max_canonical(&delay, &arrivals[o.index()]);
    }
    CanonicalReport { arrivals, delay }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ssta;
    use crate::monte_carlo::{monte_carlo, McOptions};
    use sgs_netlist::generate::{self, RandomDagSpec};

    fn lib() -> Library {
        Library::paper_default()
    }

    #[test]
    fn chain_matches_independence_ssta_exactly() {
        // No reconvergence: canonical and independence SSTA agree.
        let c = generate::inverter_chain(9);
        let s = vec![1.3; 9];
        let a = ssta(&c, &lib(), &s).delay;
        let b = ssta_canonical(&c, &lib(), &s).delay_normal();
        assert!((a.mean() - b.mean()).abs() < 1e-9);
        assert!((a.var() - b.var()).abs() < 1e-9);
    }

    #[test]
    fn tree_matches_independence_ssta() {
        // A tree has no reconvergent paths either.
        let c = generate::tree7();
        let s = vec![1.0; 7];
        let a = ssta(&c, &lib(), &s).delay;
        let b = ssta_canonical(&c, &lib(), &s).delay_normal();
        assert!(
            (a.mean() - b.mean()).abs() < 1e-6,
            "{} vs {}",
            a.mean(),
            b.mean()
        );
        assert!((a.sigma() - b.sigma()).abs() < 1e-4);
    }

    #[test]
    fn reconvergent_diamond_correlation_detected() {
        // a -> {g1, g2} -> g3: the two fan-ins of g3 share gate a's delay.
        use sgs_netlist::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new("diamond");
        let x = b.add_input("x");
        let y = b.add_input("y");
        let a = b.add_gate(GateKind::Nand2, "a", &[x, y]).unwrap();
        let g1 = b.add_gate(GateKind::Inv, "g1", &[a]).unwrap();
        let g2 = b.add_gate(GateKind::Inv, "g2", &[a]).unwrap();
        let g3 = b.add_gate(GateKind::Nand2, "g3", &[g1, g2]).unwrap();
        b.mark_output(g3).unwrap();
        let c = b.build().unwrap();
        let s = vec![1.0; 4];
        let rep = ssta_canonical(&c, &lib(), &s);
        // The fan-ins of g3 are the arrivals of g1 and g2.
        let rho = correlation(&rep.arrivals[1], &rep.arrivals[2]);
        assert!(rho > 0.5, "expected strong correlation, got {rho}");
    }

    #[test]
    fn canonical_beats_independence_on_dense_dag() {
        // On a reconvergent random DAG the independence assumption
        // overestimates the mean; the canonical form should land closer to
        // Monte Carlo.
        let c = generate::random_dag(&RandomDagSpec {
            name: "dense".into(),
            cells: 150,
            inputs: 10,
            depth: 12,
            seed: 5,
            ..Default::default()
        });
        let s = vec![1.5; c.num_gates()];
        let ind = ssta(&c, &lib(), &s).delay;
        let can = ssta_canonical(&c, &lib(), &s).delay_normal();
        let mc = monte_carlo(
            &c,
            &lib(),
            &s,
            &McOptions {
                samples: 60_000,
                seed: 9,
                criticality: false,
                ..Default::default()
            },
        )
        .delay;
        let err_ind = (ind.mean() - mc.mean()).abs();
        let err_can = (can.mean() - mc.mean()).abs();
        assert!(
            err_can < err_ind,
            "canonical {} vs independence {} (MC {})",
            can.mean(),
            ind.mean(),
            mc.mean()
        );
        // Sigma also improves (independence overestimates sigma reduction).
        let serr_ind = (ind.sigma() - mc.sigma()).abs();
        let serr_can = (can.sigma() - mc.sigma()).abs();
        assert!(
            serr_can < serr_ind + 1e-3,
            "sigma: canonical {} vs independence {} (MC {})",
            can.sigma(),
            ind.sigma(),
            mc.sigma()
        );
    }

    #[test]
    fn variance_decomposition_consistent() {
        let c = generate::ripple_carry_adder(4);
        let s = vec![1.0; c.num_gates()];
        let rep = ssta_canonical(&c, &lib(), &s);
        for form in &rep.arrivals {
            assert!(form.var() >= 0.0);
            assert!(form.resid >= 0.0);
            assert!(form.nominal > 0.0);
        }
    }
}
