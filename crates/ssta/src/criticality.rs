//! Analytic path-criticality analysis.
//!
//! The probability that a gate lies on the critical path is the classic
//! diagnostic a statistical sizer offers over a deterministic one (a gate
//! can be 40% critical — no deterministic slack number expresses that).
//! This module computes criticality analytically from Clark **tightness
//! probabilities**: at every two-operand max, `T = P(A > B)` is the chance
//! the left operand propagates. Criticality then flows backward from the
//! primary outputs, splitting at every max node according to its
//! tightness. Reconvergence makes the result approximate (the same
//! independence assumption the paper's SSTA makes); the Monte Carlo
//! criticality of [`crate::monte_carlo()`] is the reference.

use crate::delay::DelayModel;
use sgs_netlist::{Circuit, GateId, Library, Signal};
use sgs_statmath::{clark, Normal};

/// Result of [`criticality`].
#[derive(Debug, Clone)]
pub struct CriticalityReport {
    /// Per-gate probability of lying on the critical path.
    pub criticality: Vec<f64>,
    /// Per-gate arrival distributions (from the underlying SSTA pass).
    pub arrivals: Vec<Normal>,
    /// The circuit delay distribution.
    pub delay: Normal,
}

impl CriticalityReport {
    /// Gates sorted by decreasing criticality.
    pub fn ranked(&self) -> Vec<(GateId, f64)> {
        let mut v: Vec<(GateId, f64)> = self
            .criticality
            .iter()
            .enumerate()
            .map(|(i, &c)| (GateId(i), c))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }
}

/// Computes analytic gate criticalities under speed factors `s`.
///
/// # Panics
///
/// Panics if `s.len() != circuit.num_gates()`.
pub fn criticality(circuit: &Circuit, lib: &Library, s: &[f64]) -> CriticalityReport {
    assert_eq!(s.len(), circuit.num_gates(), "speed vector length mismatch");
    let model = DelayModel::new(circuit, lib);
    let n = circuit.num_gates();
    let eps = clark::DEFAULT_EPS;

    // Forward pass: arrivals plus, per gate, the probability that each
    // fan-in is the one selected by the (left-fold) max chain.
    let mut arrivals: Vec<Normal> = Vec::with_capacity(n);
    let mut select_prob: Vec<Vec<(Signal, f64)>> = Vec::with_capacity(n);
    for (id, gate) in circuit.gates() {
        let at = |sig: Signal, arrivals: &[Normal]| -> Normal {
            match sig {
                Signal::Pi(_) => Normal::certain(0.0),
                Signal::Gate(g) => arrivals[g.index()],
            }
        };
        let mut acc = at(gate.inputs[0], &arrivals);
        // probs[i] = P(input i selected so far).
        let mut probs = vec![1.0f64];
        for &sig in &gate.inputs[1..] {
            let b = at(sig, &arrivals);
            let t = clark::tightness(acc, b, 0.0);
            for p in probs.iter_mut() {
                *p *= t;
            }
            probs.push(1.0 - t);
            acc = clark::max_eps(acc, b, eps);
        }
        select_prob.push(gate.inputs.iter().copied().zip(probs).collect());
        arrivals.push(acc + model.gate_delay(id, s));
    }

    // Output max chain selection probabilities.
    let outs = circuit.outputs();
    let mut acc = arrivals[outs[0].index()];
    let mut out_probs = vec![1.0f64];
    for &o in &outs[1..] {
        let b = arrivals[o.index()];
        let t = clark::tightness(acc, b, 0.0);
        for p in out_probs.iter_mut() {
            *p *= t;
        }
        out_probs.push(1.0 - t);
        acc = clark::max_eps(acc, b, eps);
    }
    let delay = acc;

    // Backward pass: distribute criticality through the selection
    // probabilities.
    let mut crit = vec![0.0f64; n];
    for (&o, &p) in outs.iter().zip(&out_probs) {
        crit[o.index()] += p;
    }
    for (id, _) in circuit.gates().collect::<Vec<_>>().into_iter().rev() {
        let c = crit[id.index()];
        if c == 0.0 {
            continue;
        }
        for &(sig, p) in &select_prob[id.index()] {
            if let Signal::Gate(src) = sig {
                crit[src.index()] += c * p;
            }
        }
    }

    CriticalityReport {
        criticality: crit,
        arrivals,
        delay,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monte_carlo::{monte_carlo, McOptions};
    use sgs_netlist::generate;

    fn lib() -> Library {
        Library::paper_default()
    }

    #[test]
    fn chain_is_fully_critical() {
        let c = generate::inverter_chain(6);
        let r = criticality(&c, &lib(), &[1.0; 6]);
        for (i, &p) in r.criticality.iter().enumerate() {
            assert!((p - 1.0).abs() < 1e-12, "gate {i}: {p}");
        }
    }

    #[test]
    fn balanced_tree_splits_evenly() {
        let c = generate::tree7();
        let r = criticality(&c, &lib(), &[1.0; 7]);
        // Output gate certain; the two mid gates split ~50/50; leaves ~25%.
        assert!((r.criticality[6] - 1.0).abs() < 1e-9);
        assert!(
            (r.criticality[2] - 0.5).abs() < 0.02,
            "C: {}",
            r.criticality[2]
        );
        assert!(
            (r.criticality[5] - 0.5).abs() < 0.02,
            "F: {}",
            r.criticality[5]
        );
        for &leaf in &[0usize, 1, 3, 4] {
            assert!(
                (r.criticality[leaf] - 0.25).abs() < 0.03,
                "leaf {leaf}: {}",
                r.criticality[leaf]
            );
        }
    }

    #[test]
    fn agrees_with_monte_carlo_on_tree() {
        // Trees have no reconvergence, so the analytic values should match
        // sampled criticality closely.
        let c = generate::tree7();
        let s = vec![1.2, 1.0, 1.5, 1.2, 1.0, 1.5, 2.0];
        let a = criticality(&c, &lib(), &s);
        let m = monte_carlo(
            &c,
            &lib(),
            &s,
            &McOptions {
                samples: 60_000,
                seed: 21,
                criticality: true,
                ..Default::default()
            },
        );
        for i in 0..7 {
            assert!(
                (a.criticality[i] - m.criticality[i]).abs() < 0.03,
                "gate {i}: analytic {} vs MC {}",
                a.criticality[i],
                m.criticality[i]
            );
        }
    }

    #[test]
    fn ranks_gates_like_monte_carlo_on_reconvergent_circuit() {
        // On reconvergent circuits the independence assumption skews the
        // absolute probabilities (correlated arrivals share criticality
        // differently), but the *ranking* — which gates matter — must
        // still agree with Monte Carlo.
        let c = generate::ripple_carry_adder(4);
        let s = vec![1.0; c.num_gates()];
        let a = criticality(&c, &lib(), &s);
        let m = monte_carlo(
            &c,
            &lib(),
            &s,
            &McOptions {
                samples: 40_000,
                seed: 21,
                criticality: true,
                ..Default::default()
            },
        );
        // Spearman rank correlation between the two criticality vectors.
        let rank = |v: &[f64]| -> Vec<f64> {
            let mut idx: Vec<usize> = (0..v.len()).collect();
            idx.sort_by(|&i, &j| v[i].total_cmp(&v[j]));
            let mut r = vec![0.0; v.len()];
            for (pos, &i) in idx.iter().enumerate() {
                r[i] = pos as f64;
            }
            r
        };
        let ra = rank(&a.criticality);
        let rm = rank(&m.criticality);
        let n = ra.len() as f64;
        let mean = (n - 1.0) / 2.0;
        let mut num = 0.0;
        let mut da = 0.0;
        let mut dm = 0.0;
        for i in 0..ra.len() {
            num += (ra[i] - mean) * (rm[i] - mean);
            da += (ra[i] - mean).powi(2);
            dm += (rm[i] - mean).powi(2);
        }
        let spearman = num / (da * dm).sqrt();
        assert!(spearman > 0.6, "rank correlation {spearman}");
    }

    #[test]
    fn ranked_is_sorted_and_complete() {
        let c = generate::fig2();
        let r = criticality(&c, &lib(), &[1.0; 4]);
        let ranked = r.ranked();
        assert_eq!(ranked.len(), 4);
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn arrival_and_delay_consistent_with_plain_ssta() {
        let c = generate::tree7();
        let s = vec![1.6; 7];
        let a = criticality(&c, &lib(), &s);
        let b = crate::analysis::ssta(&c, &lib(), &s);
        assert!((a.delay.mean() - b.delay.mean()).abs() < 1e-12);
        assert!((a.delay.var() - b.delay.var()).abs() < 1e-12);
    }
}
