//! Monte Carlo timing: the ground truth the analytical SSTA approximates.
//!
//! Each trial draws an independent delay for every gate from its
//! `N(mu_t, sigma_t)` distribution and propagates exact (sample-wise) max
//! arrivals. The paper cites Monte Carlo as the accurate-but-too-slow
//! alternative that motivates the analytical treatment; here it validates
//! the analytical results and measures yield.

use crate::delay::DelayModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sgs_netlist::{Circuit, Library, Signal};
use sgs_statmath::{mc, Normal};

/// Options for [`monte_carlo`].
#[derive(Debug, Clone)]
pub struct McOptions {
    /// Number of trials.
    pub samples: usize,
    /// RNG seed (runs are deterministic given a seed).
    pub seed: u64,
    /// Record per-gate criticality (fraction of trials in which the gate
    /// lies on the sample's critical path). Slightly slower.
    pub criticality: bool,
}

impl Default for McOptions {
    fn default() -> Self {
        McOptions { samples: 20_000, seed: 0x5657, criticality: false }
    }
}

/// Monte Carlo timing result.
#[derive(Debug, Clone)]
pub struct McReport {
    /// Sample mean and variance of the circuit delay.
    pub delay: Normal,
    /// Sorted circuit-delay samples (for quantiles / yield curves).
    samples: Vec<f64>,
    /// Per-gate criticality, if requested (else empty).
    pub criticality: Vec<f64>,
}

impl McReport {
    /// Fraction of trials meeting the deadline `t` — the quantity the
    /// paper's `mu + k sigma` constraints target (50% / 84.1% / 99.8% for
    /// k = 0 / 1 / 3).
    pub fn yield_at(&self, t: f64) -> f64 {
        let idx = self.samples.partition_point(|&x| x <= t);
        idx as f64 / self.samples.len() as f64
    }

    /// The empirical `p`-quantile of the circuit delay.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        let n = self.samples.len();
        let idx = ((p * n as f64) as usize).min(n - 1);
        self.samples[idx]
    }

    /// Number of trials.
    pub fn num_samples(&self) -> usize {
        self.samples.len()
    }
}

/// Runs a Monte Carlo timing analysis of the circuit under speed factors
/// `s`.
///
/// # Panics
///
/// Panics if `s.len() != circuit.num_gates()` or `opts.samples == 0`.
pub fn monte_carlo(circuit: &Circuit, lib: &Library, s: &[f64], opts: &McOptions) -> McReport {
    assert_eq!(s.len(), circuit.num_gates(), "speed vector length mismatch");
    assert!(opts.samples > 0, "need at least one sample");
    let model = DelayModel::new(circuit, lib);
    let n = circuit.num_gates();
    // Precompute per-gate delay distributions once.
    let dists: Vec<Normal> = circuit.gates().map(|(id, _)| model.gate_delay(id, s)).collect();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut samples = Vec::with_capacity(opts.samples);
    let mut crit_count = vec![0u64; if opts.criticality { n } else { 0 }];
    let mut arrival = vec![0.0f64; n];
    let mut argmax: Vec<Option<usize>> = vec![None; if opts.criticality { n } else { 0 }];

    for _ in 0..opts.samples {
        for (i, (id, gate)) in circuit.gates().enumerate() {
            debug_assert_eq!(i, id.index());
            let mut u = f64::NEG_INFINITY;
            let mut from = None;
            for &sig in &gate.inputs {
                let a = match sig {
                    Signal::Pi(_) => 0.0,
                    Signal::Gate(g) => arrival[g.index()],
                };
                if a > u {
                    u = a;
                    from = match sig {
                        Signal::Pi(_) => None,
                        Signal::Gate(g) => Some(g.index()),
                    };
                }
            }
            arrival[i] = u + mc::sample(dists[i], &mut rng);
            if opts.criticality {
                argmax[i] = from;
            }
        }
        let (worst_gate, worst) = circuit
            .outputs()
            .iter()
            .map(|&o| (o.index(), arrival[o.index()]))
            .fold((usize::MAX, f64::NEG_INFINITY), |acc, x| {
                if x.1 > acc.1 {
                    x
                } else {
                    acc
                }
            });
        samples.push(worst);
        if opts.criticality {
            // Walk the sample's critical path back to the inputs.
            let mut g = Some(worst_gate);
            while let Some(i) = g {
                crit_count[i] += 1;
                g = argmax[i];
            }
        }
    }

    let (mean, var) = mc::moments(samples.iter().copied());
    samples.sort_by(f64::total_cmp);
    McReport {
        delay: Normal::from_mean_var(mean, var.max(0.0)),
        samples,
        criticality: crit_count
            .into_iter()
            .map(|c| c as f64 / opts.samples as f64)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ssta;
    use sgs_netlist::generate;

    fn lib() -> Library {
        Library::paper_default()
    }

    #[test]
    fn mc_agrees_with_analytical_ssta_on_tree() {
        let c = generate::tree7();
        let s = vec![1.0; 7];
        let analytical = ssta(&c, &lib(), &s).delay;
        let mc = monte_carlo(
            &c,
            &lib(),
            &s,
            &McOptions { samples: 60_000, seed: 1, criticality: false },
        );
        assert!(
            (mc.delay.mean() - analytical.mean()).abs() < 0.03 * analytical.mean(),
            "mean {} vs analytical {}",
            mc.delay.mean(),
            analytical.mean()
        );
        assert!(
            (mc.delay.sigma() - analytical.sigma()).abs() < 0.1 * analytical.sigma(),
            "sigma {} vs analytical {}",
            mc.delay.sigma(),
            analytical.sigma()
        );
    }

    #[test]
    fn mc_agrees_on_random_dag() {
        let c = generate::random_dag(&sgs_netlist::generate::RandomDagSpec {
            name: "mc".into(),
            cells: 120,
            inputs: 12,
            depth: 10,
            seed: 5,
            ..Default::default()
        });
        let s = vec![1.5; c.num_gates()];
        let analytical = ssta(&c, &lib(), &s).delay;
        let mc = monte_carlo(
            &c,
            &lib(),
            &s,
            &McOptions { samples: 40_000, seed: 2, criticality: false },
        );
        // Reconvergence makes the independence assumption approximate: the
        // analytical mean sits a few percent above the sampled truth on a
        // dense random DAG (correlated arrivals shrink the true max). The
        // paper reports small errors on real circuits; we accept < 8% here
        // and require the bias to be in the predicted (pessimistic)
        // direction.
        assert!(
            (mc.delay.mean() - analytical.mean()).abs() < 0.08 * analytical.mean(),
            "mean {} vs analytical {}",
            mc.delay.mean(),
            analytical.mean()
        );
        assert!(
            analytical.mean() > mc.delay.mean() - 0.01 * analytical.mean(),
            "independence approximation should not be optimistic"
        );
    }

    #[test]
    fn yield_matches_k_sigma_rule() {
        let c = generate::tree7();
        let s = vec![1.0; 7];
        let analytical = ssta(&c, &lib(), &s).delay;
        let mc = monte_carlo(
            &c,
            &lib(),
            &s,
            &McOptions { samples: 60_000, seed: 3, criticality: false },
        );
        // Paper: mu covers ~50%, mu + sigma ~84.1%, mu + 3 sigma ~99.8%.
        let y0 = mc.yield_at(analytical.mean());
        let y1 = mc.yield_at(analytical.mean_plus_k_sigma(1.0));
        let y3 = mc.yield_at(analytical.mean_plus_k_sigma(3.0));
        assert!((y0 - 0.5).abs() < 0.05, "yield at mu: {y0}");
        assert!((y1 - 0.841).abs() < 0.04, "yield at mu+sigma: {y1}");
        assert!(y3 > 0.99, "yield at mu+3sigma: {y3}");
    }

    #[test]
    fn quantiles_sorted_and_consistent() {
        let c = generate::fig2();
        let s = vec![1.0; 4];
        let mc = monte_carlo(&c, &lib(), &s, &McOptions::default());
        assert!(mc.quantile(0.1) <= mc.quantile(0.5));
        assert!(mc.quantile(0.5) <= mc.quantile(0.9));
        let q = mc.quantile(0.75);
        let y = mc.yield_at(q);
        assert!((y - 0.75).abs() < 0.01);
    }

    #[test]
    fn criticality_concentrates_on_output_gate() {
        let c = generate::tree7();
        let s = vec![1.0; 7];
        let mc = monte_carlo(
            &c,
            &lib(),
            &s,
            &McOptions { samples: 5_000, seed: 4, criticality: true },
        );
        // G (index 6) is on every critical path.
        assert!((mc.criticality[6] - 1.0).abs() < 1e-12);
        // The four leaves split the path roughly evenly.
        let leaf_sum: f64 =
            [0usize, 1, 3, 4].iter().map(|&i| mc.criticality[i]).sum();
        assert!((leaf_sum - 1.0).abs() < 0.05, "leaf criticality sum {leaf_sum}");
    }

    #[test]
    fn deterministic_given_seed() {
        let c = generate::fig2();
        let s = vec![2.0; 4];
        let a = monte_carlo(&c, &lib(), &s, &McOptions::default());
        let b = monte_carlo(&c, &lib(), &s, &McOptions::default());
        assert_eq!(a.delay, b.delay);
    }
}
