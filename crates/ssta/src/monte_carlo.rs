//! Monte Carlo timing: the ground truth the analytical SSTA approximates.
//!
//! Each trial draws an independent delay for every gate from its
//! `N(mu_t, sigma_t)` distribution and propagates exact (sample-wise) max
//! arrivals. The paper cites Monte Carlo as the accurate-but-too-slow
//! alternative that motivates the analytical treatment; here it validates
//! the analytical results and measures yield.
//!
//! # Parallel evaluation
//!
//! Trials are independent, so the sample loop parallelizes over chunks.
//! Every trial owns its own RNG stream seeded as a pure function of
//! `(opts.seed, sample_index)` — used by the sequential path too — so the
//! report is **bit-identical** regardless of thread count or whether the
//! parallel path ran at all. Chunks write circuit-delay samples into
//! disjoint slices of one preallocated buffer, and per-chunk criticality
//! counts (exact `u64` tallies) are merged by addition afterwards.

use crate::delay::DelayModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use sgs_netlist::{Circuit, Gate, Library, Signal};
use sgs_statmath::{mc, Normal};

/// Trials per parallel work unit. Large enough to amortize per-chunk
/// scratch allocation and thread dispatch, small enough to load-balance.
/// Public so the write-plan introspection layer describes the exact
/// `par_chunks_mut` partition the sample loop executes.
pub const CHUNK: usize = 1024;

/// Write-plan description of one Monte Carlo run's parallel partition.
///
/// The sample loop itself owns no long-lived state to introspect — it
/// partitions the sample buffer with `par_chunks_mut(CHUNK)` on the fly —
/// so this small descriptor reconstructs that partition (via
/// [`rayon::chunk_bounds`], the same arithmetic the shim executes) for
/// the stage-4 certifier, together with the run's parallel reductions:
/// the exact-`u64` criticality merge and the sequential trial-order
/// moment fold.
#[derive(Debug, Clone)]
pub struct McPartition {
    samples: usize,
    criticality: bool,
    corrupt_overlap: Option<usize>,
    corrupt_float_merge: bool,
}

impl McPartition {
    /// Partition descriptor for a run of `samples` trials; `criticality`
    /// adds the per-gate tally reduction to the declared merges.
    pub fn new(samples: usize, criticality: bool) -> Self {
        McPartition {
            samples,
            criticality,
            corrupt_overlap: None,
            corrupt_float_merge: false,
        }
    }

    /// Partition descriptor matching a run under `opts`.
    pub fn for_options(opts: &McOptions) -> Self {
        Self::new(opts.samples, opts.criticality)
    }

    /// Number of trials partitioned.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Whether the criticality tally reduction is declared.
    pub fn criticality(&self) -> bool {
        self.criticality
    }

    /// Half-open `(start, end)` sample ranges of the parallel chunks —
    /// the exact partition `par_chunks_mut(CHUNK)` hands out.
    pub fn chunk_bounds(&self) -> Vec<(usize, usize)> {
        rayon::chunk_bounds(self.samples, CHUNK)
    }

    /// Fault-injection hook for the stage-4 mutation battery: chunk `ci`
    /// additionally claims its neighbour's first sample in the declared
    /// write plan. Test-only.
    #[doc(hidden)]
    pub fn corrupt_overlap_chunk(&mut self, ci: usize) {
        assert!(
            ci < self.chunk_bounds().len(),
            "corrupt chunk index in range"
        );
        self.corrupt_overlap = Some(ci);
    }

    /// Fault-injection hook: declare the criticality merge as a float
    /// accumulation, which the reduction whitelist must reject. Test-only.
    #[doc(hidden)]
    pub fn corrupt_float_merge(&mut self) {
        self.corrupt_float_merge = true;
    }

    /// The planted [`McPartition::corrupt_overlap_chunk`] index, if any.
    #[doc(hidden)]
    pub fn corrupt_overlap(&self) -> Option<usize> {
        self.corrupt_overlap
    }

    /// Whether [`McPartition::corrupt_float_merge`] was planted.
    #[doc(hidden)]
    pub fn float_merge_corrupted(&self) -> bool {
        self.corrupt_float_merge
    }
}

/// Options for [`monte_carlo`].
#[derive(Debug, Clone)]
pub struct McOptions {
    /// Number of trials.
    pub samples: usize,
    /// RNG seed (runs are deterministic given a seed, independent of
    /// thread count).
    pub seed: u64,
    /// Record per-gate criticality (fraction of trials in which the gate
    /// lies on the sample's critical path). Slightly slower.
    pub criticality: bool,
    /// Use the multi-threaded sample loop when more than one rayon
    /// thread is available. Results are bit-identical either way; this
    /// exists so benchmarks and tests can pin a specific path.
    pub parallel: bool,
}

impl Default for McOptions {
    fn default() -> Self {
        McOptions {
            samples: 20_000,
            seed: 0x5657,
            criticality: false,
            parallel: true,
        }
    }
}

/// Monte Carlo timing result.
#[derive(Debug, Clone)]
pub struct McReport {
    /// Sample mean and variance of the circuit delay.
    pub delay: Normal,
    /// Sorted circuit-delay samples (for quantiles / yield curves).
    samples: Vec<f64>,
    /// Per-gate criticality, if requested (else empty).
    pub criticality: Vec<f64>,
}

impl McReport {
    /// Fraction of trials meeting the deadline `t` — the quantity the
    /// paper's `mu + k sigma` constraints target (50% / 84.1% / 99.8% for
    /// k = 0 / 1 / 3).
    pub fn yield_at(&self, t: f64) -> f64 {
        let idx = self.samples.partition_point(|&x| x <= t);
        idx as f64 / self.samples.len() as f64
    }

    /// The empirical `p`-quantile of the circuit delay.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        let n = self.samples.len();
        let idx = ((p * n as f64) as usize).min(n - 1);
        self.samples[idx]
    }

    /// Number of trials.
    pub fn num_samples(&self) -> usize {
        self.samples.len()
    }

    /// The sorted circuit-delay samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Seed for trial `idx`'s private RNG stream: the user seed XOR a
/// golden-ratio multiple of the index, decorrelated further by
/// `StdRng::seed_from_u64`'s SplitMix64 expansion. A pure function of
/// `(seed, idx)`, shared by the sequential and parallel paths.
#[inline]
fn trial_seed(seed: u64, idx: u64) -> u64 {
    seed ^ idx.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Per-worker scratch reused across the trials of one chunk.
struct Scratch {
    arrival: Vec<f64>,
    argmax: Vec<Option<usize>>,
}

impl Scratch {
    fn new(n: usize, criticality: bool) -> Self {
        Scratch {
            arrival: vec![0.0; n],
            argmax: vec![None; if criticality { n } else { 0 }],
        }
    }
}

/// Immutable trial context shared by every chunk worker: the flattened
/// topological gate order, output indices, per-gate delay distributions
/// and the run options.
#[derive(Clone, Copy)]
struct TrialCtx<'a> {
    gates: &'a [(usize, Gate)],
    outputs: &'a [usize],
    dists: &'a [Normal],
    opts: &'a McOptions,
}

/// Run trials `[chunk_start, chunk_start + out.len())`, writing each
/// trial's circuit delay into `out` and tallying criticality into
/// `crit_count` (length `num_gates` when enabled, else 0).
fn run_chunk(
    ctx: &TrialCtx<'_>,
    chunk_start: usize,
    out: &mut [f64],
    crit_count: &mut [u64],
    scratch: &mut Scratch,
) {
    let TrialCtx {
        gates,
        outputs,
        dists,
        opts,
    } = *ctx;
    let arrival = &mut scratch.arrival;
    let argmax = &mut scratch.argmax;
    for (k, slot) in out.iter_mut().enumerate() {
        let sample_idx = (chunk_start + k) as u64;
        let mut rng = StdRng::seed_from_u64(trial_seed(opts.seed, sample_idx));
        for &(i, ref gate) in gates {
            let mut u = f64::NEG_INFINITY;
            let mut from = None;
            for &sig in &gate.inputs {
                let a = match sig {
                    Signal::Pi(_) => 0.0,
                    Signal::Gate(g) => arrival[g.index()],
                };
                if a > u {
                    u = a;
                    from = match sig {
                        Signal::Pi(_) => None,
                        Signal::Gate(g) => Some(g.index()),
                    };
                }
            }
            arrival[i] = u + mc::sample(dists[i], &mut rng);
            if opts.criticality {
                argmax[i] = from;
            }
        }
        let (worst_gate, worst) = outputs.iter().map(|&o| (o, arrival[o])).fold(
            (usize::MAX, f64::NEG_INFINITY),
            |acc, x| {
                if x.1 > acc.1 {
                    x
                } else {
                    acc
                }
            },
        );
        *slot = worst;
        if opts.criticality {
            // Walk the sample's critical path back to the inputs.
            let mut g = Some(worst_gate);
            while let Some(i) = g {
                crit_count[i] += 1;
                g = argmax[i];
            }
        }
    }
}

/// Runs a Monte Carlo timing analysis of the circuit under speed factors
/// `s`. Equivalent to [`monte_carlo_with_model`] with a freshly built
/// [`DelayModel`].
///
/// # Panics
///
/// Panics if `s.len() != circuit.num_gates()` or `opts.samples == 0`.
pub fn monte_carlo(circuit: &Circuit, lib: &Library, s: &[f64], opts: &McOptions) -> McReport {
    let model = DelayModel::new(circuit, lib);
    monte_carlo_with_model(circuit, &model, s, opts)
}

/// [`monte_carlo`] under a trace span: the whole sweep is recorded as a
/// `"monte_carlo"` phase span plus an `mc_samples` counter. With a
/// disabled tracer this is exactly [`monte_carlo`] — same report, no
/// clock reads, no allocation.
///
/// # Panics
///
/// Panics if `s.len() != circuit.num_gates()` or `opts.samples == 0`.
pub fn monte_carlo_traced(
    circuit: &Circuit,
    lib: &Library,
    s: &[f64],
    opts: &McOptions,
    tracer: sgs_trace::Tracer<'_>,
) -> McReport {
    let report = {
        let _sp = tracer.span("monte_carlo");
        monte_carlo(circuit, lib, s, opts)
    };
    tracer.emit(|| sgs_trace::TraceEvent::Counter {
        name: "mc_samples",
        value: report.num_samples() as u64,
    });
    report
}

/// Runs a Monte Carlo timing analysis reusing a prebuilt [`DelayModel`].
///
/// The report is a pure function of `(circuit, model, s, opts.samples,
/// opts.seed, opts.criticality)`: thread count and `opts.parallel` do not
/// change a single bit of the output.
///
/// # Panics
///
/// Panics if `s.len() != circuit.num_gates()` or `opts.samples == 0`.
pub fn monte_carlo_with_model(
    circuit: &Circuit,
    model: &DelayModel,
    s: &[f64],
    opts: &McOptions,
) -> McReport {
    assert_eq!(s.len(), circuit.num_gates(), "speed vector length mismatch");
    assert!(opts.samples > 0, "need at least one sample");
    sgs_metrics::incr(sgs_metrics::Counter::McRuns);
    sgs_metrics::add(sgs_metrics::Counter::McSamples, opts.samples as u64);
    let n = circuit.num_gates();
    // Precompute per-gate delay distributions once.
    let dists: Vec<Normal> = circuit
        .gates()
        .map(|(id, _)| model.gate_delay(id, s))
        .collect();
    // Materialize the topological gate order and output indices so chunk
    // workers iterate plain slices.
    let gates: Vec<(usize, Gate)> = circuit
        .gates()
        .map(|(id, g)| (id.index(), g.clone()))
        .collect();
    let outputs: Vec<usize> = circuit.outputs().iter().map(|o| o.index()).collect();
    let crit_len = if opts.criticality { n } else { 0 };

    let mut samples = vec![0.0f64; opts.samples];
    let use_parallel = opts.parallel && opts.samples > CHUNK && rayon::current_num_threads() > 1;
    let ctx = TrialCtx {
        gates: &gates,
        outputs: &outputs,
        dists: &dists,
        opts,
    };
    #[cfg(feature = "shadow-write")]
    let shadow = sgs_trace::shadow::begin("mc_samples", opts.samples);

    let chunk_counts: Vec<Vec<u64>> = if use_parallel {
        #[cfg(feature = "shadow-write")]
        let shadow = &shadow;
        samples
            .par_chunks_mut(CHUNK)
            .enumerate()
            .map(|(ci, out)| {
                #[cfg(feature = "shadow-write")]
                for k in 0..out.len() {
                    shadow.stamp(ci as u32, ci * CHUNK + k);
                }
                let mut crit_count = vec![0u64; crit_len];
                let mut scratch = Scratch::new(n, opts.criticality);
                run_chunk(&ctx, ci * CHUNK, out, &mut crit_count, &mut scratch);
                crit_count
            })
            .collect()
    } else {
        let mut scratch = Scratch::new(n, opts.criticality);
        let mut crit_count = vec![0u64; crit_len];
        for (ci, out) in samples.chunks_mut(CHUNK).enumerate() {
            #[cfg(feature = "shadow-write")]
            for k in 0..out.len() {
                shadow.stamp(ci as u32, ci * CHUNK + k);
            }
            run_chunk(&ctx, ci * CHUNK, out, &mut crit_count, &mut scratch);
        }
        vec![crit_count]
    };
    #[cfg(feature = "shadow-write")]
    drop(shadow);

    // Merge per-chunk criticality tallies; u64 addition is exact and
    // order-independent, so the merge is deterministic.
    let mut crit_count = vec![0u64; crit_len];
    for counts in &chunk_counts {
        for (total, c) in crit_count.iter_mut().zip(counts) {
            *total += c;
        }
    }

    // Moments over trial order (not sorted order) keep the accumulation
    // sequence fixed, so the floating-point result never depends on the
    // execution schedule.
    let (mean, var) = mc::moments(samples.iter().copied());
    samples.sort_by(f64::total_cmp);
    McReport {
        delay: Normal::from_mean_var(mean, var.max(0.0)),
        samples,
        criticality: crit_count
            .into_iter()
            .map(|c| c as f64 / opts.samples as f64)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ssta;
    use sgs_netlist::generate;

    fn lib() -> Library {
        Library::paper_default()
    }

    #[test]
    fn mc_agrees_with_analytical_ssta_on_tree() {
        let c = generate::tree7();
        let s = vec![1.0; 7];
        let analytical = ssta(&c, &lib(), &s).delay;
        let mc = monte_carlo(
            &c,
            &lib(),
            &s,
            &McOptions {
                samples: 60_000,
                seed: 1,
                criticality: false,
                ..Default::default()
            },
        );
        assert!(
            (mc.delay.mean() - analytical.mean()).abs() < 0.03 * analytical.mean(),
            "mean {} vs analytical {}",
            mc.delay.mean(),
            analytical.mean()
        );
        assert!(
            (mc.delay.sigma() - analytical.sigma()).abs() < 0.1 * analytical.sigma(),
            "sigma {} vs analytical {}",
            mc.delay.sigma(),
            analytical.sigma()
        );
    }

    #[test]
    fn mc_agrees_on_random_dag() {
        let c = generate::random_dag(&sgs_netlist::generate::RandomDagSpec {
            name: "mc".into(),
            cells: 120,
            inputs: 12,
            depth: 10,
            seed: 5,
            ..Default::default()
        });
        let s = vec![1.5; c.num_gates()];
        let analytical = ssta(&c, &lib(), &s).delay;
        let mc = monte_carlo(
            &c,
            &lib(),
            &s,
            &McOptions {
                samples: 40_000,
                seed: 2,
                criticality: false,
                ..Default::default()
            },
        );
        // Reconvergence makes the independence assumption approximate: the
        // analytical mean sits a few percent above the sampled truth on a
        // dense random DAG (correlated arrivals shrink the true max). The
        // paper reports small errors on real circuits; we accept < 8% here
        // and require the bias to be in the predicted (pessimistic)
        // direction.
        assert!(
            (mc.delay.mean() - analytical.mean()).abs() < 0.08 * analytical.mean(),
            "mean {} vs analytical {}",
            mc.delay.mean(),
            analytical.mean()
        );
        assert!(
            analytical.mean() > mc.delay.mean() - 0.01 * analytical.mean(),
            "independence approximation should not be optimistic"
        );
    }

    #[test]
    fn yield_matches_k_sigma_rule() {
        let c = generate::tree7();
        let s = vec![1.0; 7];
        let analytical = ssta(&c, &lib(), &s).delay;
        let mc = monte_carlo(
            &c,
            &lib(),
            &s,
            &McOptions {
                samples: 60_000,
                seed: 3,
                criticality: false,
                ..Default::default()
            },
        );
        // Paper: mu covers ~50%, mu + sigma ~84.1%, mu + 3 sigma ~99.8%.
        let y0 = mc.yield_at(analytical.mean());
        let y1 = mc.yield_at(analytical.mean_plus_k_sigma(1.0));
        let y3 = mc.yield_at(analytical.mean_plus_k_sigma(3.0));
        assert!((y0 - 0.5).abs() < 0.05, "yield at mu: {y0}");
        assert!((y1 - 0.841).abs() < 0.04, "yield at mu+sigma: {y1}");
        assert!(y3 > 0.99, "yield at mu+3sigma: {y3}");
    }

    #[test]
    fn quantiles_sorted_and_consistent() {
        let c = generate::fig2();
        let s = vec![1.0; 4];
        let mc = monte_carlo(&c, &lib(), &s, &McOptions::default());
        assert!(mc.quantile(0.1) <= mc.quantile(0.5));
        assert!(mc.quantile(0.5) <= mc.quantile(0.9));
        let q = mc.quantile(0.75);
        let y = mc.yield_at(q);
        assert!((y - 0.75).abs() < 0.01);
    }

    #[test]
    fn criticality_concentrates_on_output_gate() {
        let c = generate::tree7();
        let s = vec![1.0; 7];
        let mc = monte_carlo(
            &c,
            &lib(),
            &s,
            &McOptions {
                samples: 5_000,
                seed: 4,
                criticality: true,
                ..Default::default()
            },
        );
        // G (index 6) is on every critical path.
        assert!((mc.criticality[6] - 1.0).abs() < 1e-12);
        // The four leaves split the path roughly evenly.
        let leaf_sum: f64 = [0usize, 1, 3, 4].iter().map(|&i| mc.criticality[i]).sum();
        assert!(
            (leaf_sum - 1.0).abs() < 0.05,
            "leaf criticality sum {leaf_sum}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let c = generate::fig2();
        let s = vec![2.0; 4];
        let a = monte_carlo(&c, &lib(), &s, &McOptions::default());
        let b = monte_carlo(&c, &lib(), &s, &McOptions::default());
        assert_eq!(a.delay, b.delay);
    }

    #[test]
    fn traced_monte_carlo_matches_plain_and_records_span() {
        let c = generate::tree7();
        let s = [1.0; 7];
        let opts = McOptions {
            samples: 500,
            ..Default::default()
        };
        let plain = monte_carlo(&c, &lib(), &s, &opts);
        let sink = sgs_trace::MemorySink::new();
        let traced = monte_carlo_traced(&c, &lib(), &s, &opts, sgs_trace::Tracer::new(&sink));
        assert_eq!(plain.delay, traced.delay);
        assert!(sink.span_seconds("monte_carlo") >= 0.0);
        assert_eq!(
            sink.count(|e| matches!(
                e,
                sgs_trace::TraceEvent::Counter {
                    name: "mc_samples",
                    value: 500
                }
            )),
            1
        );
    }
}
