//! Per-edge wire delays — the paper's general delay model (Fig. 1 /
//! Eq. 2).
//!
//! The paper's model allows a distinct (statistical) wire delay on every
//! fan-out edge: `T_w,i = T_out + t_w,i`. Its experiments then lump wiring
//! into the output capacitance (as the default flows here do), but the
//! general model is part of the formulation, so this module provides it:
//! a [`WireModel`] assigns a delay distribution to any driver→sink edge,
//! and [`ssta_with_wires`] / [`monte_carlo_with_wires`] run the analyses
//! under it.

use crate::delay::DelayModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sgs_netlist::{Circuit, GateId, Library, Signal};
use sgs_statmath::{clark, mc, Normal};
use std::collections::HashMap;

/// Per-edge wire-delay assignment. Edges not present delay by exactly 0.
#[derive(Debug, Clone, Default)]
pub struct WireModel {
    edges: HashMap<(GateId, GateId), Normal>,
}

impl WireModel {
    /// An empty model (all wire delays 0) — the paper's experimental
    /// setting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the delay distribution of the `driver -> sink` edge
    /// (builder-style).
    pub fn with_edge(mut self, driver: GateId, sink: GateId, delay: Normal) -> Self {
        self.edges.insert((driver, sink), delay);
        self
    }

    /// The delay of an edge (exactly 0 when unset).
    pub fn edge(&self, driver: GateId, sink: GateId) -> Normal {
        self.edges
            .get(&(driver, sink))
            .copied()
            .unwrap_or_else(|| Normal::certain(0.0))
    }

    /// Number of explicitly assigned edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edge has an assigned delay.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Statistical STA under the general delay model: each fan-in arrival is
/// the driver's output arrival plus the edge's wire delay (paper Eq. 2),
/// then the usual stochastic max and gate-delay add.
///
/// # Panics
///
/// Panics if `s.len() != circuit.num_gates()`.
pub fn ssta_with_wires(
    circuit: &Circuit,
    lib: &Library,
    s: &[f64],
    wires: &WireModel,
) -> (Vec<Normal>, Normal) {
    assert_eq!(s.len(), circuit.num_gates(), "speed vector length mismatch");
    let model = DelayModel::new(circuit, lib);
    let mut arrivals: Vec<Normal> = Vec::with_capacity(circuit.num_gates());
    for (id, gate) in circuit.gates() {
        let u = gate
            .inputs
            .iter()
            .map(|&sig| match sig {
                Signal::Pi(_) => Normal::certain(0.0),
                Signal::Gate(src) => arrivals[src.index()] + wires.edge(src, id),
            })
            .reduce(clark::max)
            .expect("gates have at least one input");
        arrivals.push(u + model.gate_delay(id, s));
    }
    let delay = circuit
        .outputs()
        .iter()
        .map(|&o| arrivals[o.index()])
        .reduce(clark::max)
        .expect("validated circuits have outputs");
    (arrivals, delay)
}

/// Monte Carlo timing under the general delay model (wire delays sampled
/// independently per trial). Returns `(mean, var)` of the circuit delay.
///
/// # Panics
///
/// Panics if `s.len() != circuit.num_gates()` or `samples == 0`.
pub fn monte_carlo_with_wires(
    circuit: &Circuit,
    lib: &Library,
    s: &[f64],
    wires: &WireModel,
    samples: usize,
    seed: u64,
) -> Normal {
    assert_eq!(s.len(), circuit.num_gates(), "speed vector length mismatch");
    assert!(samples > 0, "need at least one sample");
    let model = DelayModel::new(circuit, lib);
    let dists: Vec<Normal> = circuit
        .gates()
        .map(|(id, _)| model.gate_delay(id, s))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let n = circuit.num_gates();
    let mut arrival = vec![0.0f64; n];
    let (mean, var) = mc::moments((0..samples).map(|_| {
        for (i, (id, gate)) in circuit.gates().enumerate() {
            let mut u = f64::NEG_INFINITY;
            for &sig in &gate.inputs {
                let a = match sig {
                    Signal::Pi(_) => 0.0,
                    Signal::Gate(src) => {
                        arrival[src.index()] + mc::sample(wires.edge(src, id), &mut rng)
                    }
                };
                u = u.max(a);
            }
            arrival[i] = u + mc::sample(dists[i], &mut rng);
        }
        circuit
            .outputs()
            .iter()
            .map(|&o| arrival[o.index()])
            .fold(f64::NEG_INFINITY, f64::max)
    }));
    Normal::from_mean_var(mean, var.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ssta;
    use sgs_netlist::generate;

    fn lib() -> Library {
        Library::paper_default()
    }

    #[test]
    fn empty_wire_model_matches_plain_ssta() {
        let c = generate::ripple_carry_adder(4);
        let s = vec![1.3; c.num_gates()];
        let plain = ssta(&c, &lib(), &s).delay;
        let (_, wired) = ssta_with_wires(&c, &lib(), &s, &WireModel::new());
        assert!((plain.mean() - wired.mean()).abs() < 1e-12);
        assert!((plain.var() - wired.var()).abs() < 1e-12);
    }

    #[test]
    fn chain_wire_delays_add_exactly() {
        let c = generate::inverter_chain(5);
        let s = vec![1.0; 5];
        let mut wires = WireModel::new();
        let mut expect_mu = 0.0;
        let mut expect_var = 0.0;
        for i in 0..4 {
            let w = Normal::new(0.5 + 0.1 * i as f64, 0.05);
            wires = wires.with_edge(GateId(i), GateId(i + 1), w);
            expect_mu += w.mean();
            expect_var += w.var();
        }
        let base = ssta(&c, &lib(), &s).delay;
        let (_, wired) = ssta_with_wires(&c, &lib(), &s, &wires);
        assert!((wired.mean() - base.mean() - expect_mu).abs() < 1e-9);
        assert!((wired.var() - base.var() - expect_var).abs() < 1e-9);
    }

    #[test]
    fn wire_uncertainty_widens_distribution() {
        let c = generate::tree7();
        let s = vec![1.0; 7];
        let mut wires = WireModel::new();
        for (id, gate) in c.gates() {
            for &sig in &gate.inputs {
                if let Signal::Gate(src) = sig {
                    wires = wires.with_edge(src, id, Normal::new(0.3, 0.3));
                }
            }
        }
        let plain = ssta(&c, &lib(), &s).delay;
        let (_, wired) = ssta_with_wires(&c, &lib(), &s, &wires);
        assert!(wired.mean() > plain.mean());
        assert!(wired.sigma() > plain.sigma());
    }

    #[test]
    fn analytic_matches_monte_carlo_with_wires() {
        let c = generate::tree7();
        let s = vec![1.0; 7];
        let mut wires = WireModel::new();
        for (id, gate) in c.gates() {
            for &sig in &gate.inputs {
                if let Signal::Gate(src) = sig {
                    wires = wires.with_edge(src, id, Normal::new(0.4, 0.15));
                }
            }
        }
        let (_, analytic) = ssta_with_wires(&c, &lib(), &s, &wires);
        let sampled = monte_carlo_with_wires(&c, &lib(), &s, &wires, 60_000, 17);
        assert!(
            (analytic.mean() - sampled.mean()).abs() < 0.02 * analytic.mean(),
            "{} vs {}",
            analytic.mean(),
            sampled.mean()
        );
        assert!(
            (analytic.sigma() - sampled.sigma()).abs() < 0.1 * analytic.sigma(),
            "{} vs {}",
            analytic.sigma(),
            sampled.sigma()
        );
    }

    #[test]
    fn wire_model_accessors() {
        let w = WireModel::new();
        assert!(w.is_empty());
        let w = w.with_edge(GateId(0), GateId(1), Normal::new(1.0, 0.1));
        assert_eq!(w.len(), 1);
        assert_eq!(w.edge(GateId(0), GateId(1)).mean(), 1.0);
        assert_eq!(w.edge(GateId(1), GateId(0)).mean(), 0.0);
    }
}
