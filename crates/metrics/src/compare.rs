//! Cross-run snapshot comparison — the perf-regression gate.
//!
//! [`compare`] diffs two [`Snapshot`]s metric-by-metric under one policy:
//!
//! - **Timing-like metrics** (names ending in `_seconds`, names starting
//!   with `alloc_`, and all phase timings) regress only when the new run
//!   is *slower/bigger* than `base * (1 + threshold)` plus a small
//!   absolute slack — wall-clock is noisy, so CI uses generous
//!   thresholds. Improvements never fail the gate.
//! - **Everything else is deterministic** in this stack (eval counts,
//!   iteration counts, Monte Carlo samples, convergence residuals,
//!   histogram observation counts — PR 1 made them bit-identical at any
//!   thread count), so *any* change is reported as a regression signal;
//!   intentional changes are handled by regenerating the committed
//!   baseline.
//! - **Metadata is identity, not behaviour**: git sha, timestamp, circuit
//!   and thread count are ignored except that differing schema versions
//!   are schema drift.
//! - **Missing/extra metrics are schema drift**, reported with their
//!   names and a dedicated exit code — never a panic — so adding a metric
//!   shows up as exactly that.

use crate::hist::HistSnapshot;
use crate::snapshot::Snapshot;

/// Comparison policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct CompareOptions {
    /// Relative slow-down tolerance for timing-like metrics (`9.0` means
    /// "fail only when more than 10x the baseline").
    pub threshold: f64,
    /// Absolute slack (seconds / bytes / calls) added on top of the
    /// relative threshold so micro-timings near zero never trip the gate.
    pub absolute_slack: f64,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions {
            threshold: 0.25,
            absolute_slack: 0.01,
        }
    }
}

/// Result of one comparison: human-readable lines plus the failure sets.
#[derive(Debug, Clone, Default)]
pub struct CompareOutcome {
    /// Per-metric report lines (only metrics that changed).
    pub lines: Vec<String>,
    /// Metrics that regressed (each line names the metric).
    pub regressions: Vec<String>,
    /// Schema-drift findings (missing/extra metrics, version skew).
    pub drift: Vec<String>,
    /// Timing metrics that improved (informational).
    pub improvements: Vec<String>,
}

impl CompareOutcome {
    /// Process exit code: `0` clean, `1` regression, `3` drift only.
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        if !self.regressions.is_empty() {
            1
        } else if !self.drift.is_empty() {
            3
        } else {
            0
        }
    }
}

/// Whether a metric name is compared with the relative timing threshold
/// instead of strict equality.
#[must_use]
pub fn is_timing_metric(name: &str) -> bool {
    name.ends_with("_seconds") || name.starts_with("alloc_")
}

fn key_drift<A, B>(
    kind: &str,
    base: &std::collections::BTreeMap<String, A>,
    new: &std::collections::BTreeMap<String, B>,
    out: &mut CompareOutcome,
) {
    for k in base.keys() {
        if !new.contains_key(k) {
            out.drift.push(format!("{kind} {k}: missing in new run"));
        }
    }
    for k in new.keys() {
        if !base.contains_key(k) {
            out.drift.push(format!("{kind} {k}: not in baseline"));
        }
    }
}

fn cmp_timing(name: &str, base: f64, new: f64, opts: &CompareOptions, out: &mut CompareOutcome) {
    if !base.is_finite() || !new.is_finite() {
        // NaN quantiles of empty histograms and friends: only a
        // finite/non-finite flip is a change worth reporting.
        if base.is_nan() != new.is_nan() {
            out.regressions
                .push(format!("{name}: {base} -> {new} (finiteness changed)"));
            out.lines
                .push(format!("REGRESSION {name}: {base} -> {new}"));
        }
        return;
    }
    let limit = base * (1.0 + opts.threshold) + opts.absolute_slack;
    if new > limit {
        out.regressions.push(format!(
            "{name}: {base:.6} -> {new:.6} (limit {limit:.6}, threshold {:.0}%)",
            opts.threshold * 100.0
        ));
        out.lines
            .push(format!("REGRESSION {name}: {base:.6} -> {new:.6}"));
    } else if new < base {
        out.improvements
            .push(format!("{name}: {base:.6} -> {new:.6}"));
        out.lines
            .push(format!("improved   {name}: {base:.6} -> {new:.6}"));
    }
}

fn cmp_strict_f64(name: &str, base: f64, new: f64, out: &mut CompareOutcome) {
    if base.total_cmp(&new) != std::cmp::Ordering::Equal {
        out.regressions
            .push(format!("{name}: {base} -> {new} (strict metric changed)"));
        out.lines
            .push(format!("REGRESSION {name}: {base} -> {new}"));
    }
}

fn cmp_strict_u64(name: &str, base: u64, new: u64, out: &mut CompareOutcome) {
    if base != new {
        out.regressions
            .push(format!("{name}: {base} -> {new} (strict metric changed)"));
        out.lines
            .push(format!("REGRESSION {name}: {base} -> {new}"));
    }
}

fn cmp_hist(
    name: &str,
    base: &HistSnapshot,
    new: &HistSnapshot,
    opts: &CompareOptions,
    out: &mut CompareOutcome,
) {
    // Observation counts are deterministic regardless of what the
    // histogram measures (e.g. *how many* outer iterations ran).
    cmp_strict_u64(&format!("{name}.count"), base.count, new.count, out);
    let fields = [
        ("sum", base.sum, new.sum),
        ("min", base.min, new.min),
        ("max", base.max, new.max),
        ("p50", base.p50, new.p50),
        ("p90", base.p90, new.p90),
        ("p99", base.p99, new.p99),
    ];
    for (field, b, n) in fields {
        let qname = format!("{name}.{field}");
        if is_timing_metric(name) {
            cmp_timing(&qname, b, n, opts, out);
        } else {
            cmp_strict_f64(&qname, b, n, out);
        }
    }
}

/// Diffs two snapshots under `opts`; see the module docs for the policy.
#[must_use]
pub fn compare(base: &Snapshot, new: &Snapshot, opts: &CompareOptions) -> CompareOutcome {
    let mut out = CompareOutcome::default();
    if base.schema_version != new.schema_version {
        out.drift.push(format!(
            "schema_version: baseline {} vs new {}",
            base.schema_version, new.schema_version
        ));
    }
    key_drift("counter", &base.counters, &new.counters, &mut out);
    key_drift("gauge", &base.gauges, &new.gauges, &mut out);
    key_drift("histogram", &base.hists, &new.hists, &mut out);
    key_drift("phase", &base.phases, &new.phases, &mut out);

    for (k, b) in &base.counters {
        let Some(n) = new.counters.get(k) else {
            continue;
        };
        if is_timing_metric(k) {
            cmp_timing(k, *b as f64, *n as f64, opts, &mut out);
        } else {
            cmp_strict_u64(k, *b, *n, &mut out);
        }
    }
    for (k, b) in &base.gauges {
        let Some(n) = new.gauges.get(k) else { continue };
        if is_timing_metric(k) {
            cmp_timing(k, *b, *n, opts, &mut out);
        } else {
            cmp_strict_f64(k, *b, *n, &mut out);
        }
    }
    for (k, b) in &base.hists {
        let Some(n) = new.hists.get(k) else { continue };
        cmp_hist(k, b, n, opts, &mut out);
    }
    for (k, b) in &base.phases {
        let Some(n) = new.phases.get(k) else { continue };
        cmp_strict_u64(&format!("phase {k}.count"), b.count, n.count, &mut out);
        cmp_timing(
            &format!("phase {k}.seconds"),
            b.seconds,
            n.seconds,
            opts,
            &mut out,
        );
    }
    out
}

/// An absolute ceiling on one metric of the *new* run, independent of
/// the baseline.
///
/// Relative thresholds catch drift between two runs, but they inherit
/// whatever the committed baseline happens to say; a budget pins a hard
/// line (`alloc_calls=25000`) that keeps holding even if the baseline is
/// regenerated after a regression. Budgets are checked against counters
/// and gauges by exact name.
#[derive(Debug, Clone, PartialEq)]
pub struct Budget {
    /// Counter or gauge name the ceiling applies to.
    pub metric: String,
    /// Inclusive maximum the new run may report.
    pub max: f64,
}

/// Parses a `--budget metric=max` operand (`"alloc_calls=25000"`).
///
/// # Errors
///
/// Returns a message when the operand has no `=`, the maximum is not a
/// number, or the maximum is negative/NaN.
pub fn parse_budget(text: &str) -> Result<Budget, String> {
    let Some((metric, max)) = text.split_once('=') else {
        return Err(format!(
            "bad budget '{text}' (expected metric=max, e.g. alloc_calls=25000)"
        ));
    };
    if metric.is_empty() {
        return Err(format!("bad budget '{text}' (empty metric name)"));
    }
    let max: f64 = max
        .parse()
        .map_err(|_| format!("bad budget '{text}' (maximum must be a number)"))?;
    if max.is_nan() || max < 0.0 {
        return Err(format!("budget '{text}' must have a non-negative maximum"));
    }
    Ok(Budget {
        metric: metric.to_string(),
        max,
    })
}

fn budget_value(snap: &Snapshot, metric: &str) -> Option<f64> {
    #[allow(clippy::cast_precision_loss)] // counters are far below 2^53
    snap.counters
        .get(metric)
        .map(|v| *v as f64)
        .or_else(|| snap.gauges.get(metric).copied())
}

/// Checks absolute `budgets` against the `new` snapshot, folding
/// violations into `out` as regressions (a metric missing from the
/// snapshot is schema drift — the budget names something the run no
/// longer reports).
pub fn check_budgets(new: &Snapshot, budgets: &[Budget], out: &mut CompareOutcome) {
    for b in budgets {
        match budget_value(new, &b.metric) {
            None => out.drift.push(format!(
                "budget {}: metric not present in new run",
                b.metric
            )),
            // NaN counts as over budget: a budgeted metric going
            // non-finite is never a pass.
            Some(v) if v > b.max || v.is_nan() => {
                out.regressions
                    .push(format!("{}: {v} exceeds budget {}", b.metric, b.max));
                out.lines
                    .push(format!("OVER BUDGET {}: {v} > {}", b.metric, b.max));
            }
            Some(v) => {
                out.lines
                    .push(format!("budget ok  {}: {v} <= {}", b.metric, b.max));
            }
        }
    }
}

/// Parses a `--threshold=N%` operand (percent sign optional) into a
/// relative ratio (`"25%"` → `0.25`).
///
/// # Errors
///
/// Returns a message on non-numeric or negative input.
pub fn parse_threshold(text: &str) -> Result<f64, String> {
    let trimmed = text.strip_suffix('%').unwrap_or(text);
    let pct: f64 = trimmed
        .parse()
        .map_err(|_| format!("bad threshold '{text}' (expected e.g. 25%)"))?;
    if pct.is_nan() || pct < 0.0 {
        return Err(format!("threshold '{text}' must be non-negative"));
    }
    Ok(pct / 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{Metadata, PhaseSnap, SCHEMA_VERSION};
    use std::collections::BTreeMap;

    fn snap() -> Snapshot {
        let mut counters = BTreeMap::new();
        counters.insert("nlp_solves".to_string(), 2u64);
        let mut gauges = BTreeMap::new();
        gauges.insert("run_seconds".to_string(), 1.0);
        gauges.insert("nlp_last_c_norm".to_string(), 1e-9);
        let mut phases = BTreeMap::new();
        phases.insert(
            "solve".to_string(),
            PhaseSnap {
                name: "solve".into(),
                parent: None,
                seconds: 0.9,
                count: 1,
            },
        );
        Snapshot {
            schema_version: SCHEMA_VERSION,
            meta: Metadata::default(),
            counters,
            gauges,
            hists: BTreeMap::new(),
            phases,
        }
    }

    #[test]
    fn identical_snapshots_are_clean() {
        let a = snap();
        let out = compare(&a, &a.clone(), &CompareOptions::default());
        assert_eq!(out.exit_code(), 0, "{:?}", out);
    }

    #[test]
    fn metadata_differences_are_ignored() {
        let a = snap();
        let mut b = snap();
        b.meta.git_sha = "other".into();
        b.meta.timestamp = "later".into();
        b.meta.threads = 8;
        let out = compare(&a, &b, &CompareOptions::default());
        assert_eq!(out.exit_code(), 0);
    }

    #[test]
    fn slow_timing_regresses_fast_timing_improves() {
        let a = snap();
        let mut b = snap();
        *b.gauges.get_mut("run_seconds").unwrap() = 10.0;
        let out = compare(&a, &b, &CompareOptions::default());
        assert_eq!(out.exit_code(), 1);
        assert!(out.regressions.iter().any(|r| r.contains("run_seconds")));

        let mut c = snap();
        *c.gauges.get_mut("run_seconds").unwrap() = 0.5;
        let out = compare(&a, &c, &CompareOptions::default());
        assert_eq!(out.exit_code(), 0);
        assert!(out.improvements.iter().any(|r| r.contains("run_seconds")));
    }

    #[test]
    fn strict_metrics_fail_on_any_change() {
        let a = snap();
        let mut b = snap();
        *b.counters.get_mut("nlp_solves").unwrap() = 3;
        let out = compare(&a, &b, &CompareOptions::default());
        assert_eq!(out.exit_code(), 1);
        assert!(out.regressions.iter().any(|r| r.contains("nlp_solves")));

        let mut c = snap();
        *c.gauges.get_mut("nlp_last_c_norm").unwrap() = 2e-9;
        let out = compare(&a, &c, &CompareOptions::default());
        assert_eq!(out.exit_code(), 1);
    }

    #[test]
    fn missing_and_extra_metrics_are_drift() {
        let a = snap();
        let mut b = snap();
        b.counters.remove("nlp_solves");
        b.counters.insert("brand_new".to_string(), 1);
        let out = compare(&a, &b, &CompareOptions::default());
        assert_eq!(out.exit_code(), 3);
        assert!(out.drift.iter().any(|d| d.contains("nlp_solves")));
        assert!(out.drift.iter().any(|d| d.contains("brand_new")));
    }

    #[test]
    fn budget_parsing() {
        assert_eq!(
            parse_budget("alloc_calls=25000").unwrap(),
            Budget {
                metric: "alloc_calls".into(),
                max: 25000.0
            }
        );
        assert!(parse_budget("alloc_calls").is_err());
        assert!(parse_budget("=5").is_err());
        assert!(parse_budget("alloc_calls=lots").is_err());
        assert!(parse_budget("alloc_calls=-1").is_err());
    }

    #[test]
    fn budgets_gate_on_absolute_ceilings() {
        let mut s = snap();
        s.counters.insert("alloc_calls".to_string(), 2321);

        // Under budget: clean, with an informational line.
        let mut out = CompareOutcome::default();
        check_budgets(&s, &[parse_budget("alloc_calls=25000").unwrap()], &mut out);
        assert_eq!(out.exit_code(), 0, "{out:?}");
        assert!(out.lines.iter().any(|l| l.contains("budget ok")));

        // Over budget: a regression even though no baseline is involved.
        let mut out = CompareOutcome::default();
        check_budgets(&s, &[parse_budget("alloc_calls=2000").unwrap()], &mut out);
        assert_eq!(out.exit_code(), 1);
        assert!(out.regressions.iter().any(|r| r.contains("alloc_calls")));

        // Gauges are budgetable too, exactly at the limit is OK.
        let mut out = CompareOutcome::default();
        check_budgets(&s, &[parse_budget("run_seconds=1.0").unwrap()], &mut out);
        assert_eq!(out.exit_code(), 0, "{out:?}");

        // A budget naming a metric the run no longer reports is drift.
        let mut out = CompareOutcome::default();
        check_budgets(&s, &[parse_budget("no_such_metric=1").unwrap()], &mut out);
        assert_eq!(out.exit_code(), 3);
    }

    #[test]
    fn sweep_metrics_use_the_intended_policies() {
        // Point latency is timing-like (threshold + slack); the point /
        // warm-hit / refinement / infeasible counters are deterministic
        // and must compare strictly.
        assert!(is_timing_metric("sweep_point_seconds"));
        for strict in [
            "sweep_points",
            "sweep_warm_hits",
            "sweep_refinements",
            "sweep_infeasible_points",
            "sweep_cache_hits",
        ] {
            assert!(!is_timing_metric(strict), "{strict} must be strict");
        }

        let mut a = snap();
        a.counters.insert("sweep_points".to_string(), 14);
        let mut b = a.clone();
        *b.counters.get_mut("sweep_points").unwrap() = 15;
        let out = compare(&a, &b, &CompareOptions::default());
        assert_eq!(out.exit_code(), 1, "point-count drift must regress");
        assert!(out.regressions.iter().any(|r| r.contains("sweep_points")));
    }

    #[test]
    fn threshold_parsing() {
        assert_eq!(parse_threshold("25%").unwrap(), 0.25);
        assert_eq!(parse_threshold("900").unwrap(), 9.0);
        assert!(parse_threshold("abc").is_err());
        assert!(parse_threshold("-5%").is_err());
    }
}
