//! Human-readable run reports from a snapshot (plus optional trace
//! JSONL) — what `sgs_report render` prints.

use crate::snapshot::Snapshot;
use sgs_trace::json::{parse_json, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders the full run report: header, phase profile tree, histogram
/// table, counter/gauge summary, and (when supplied) a per-phase
/// aggregation of trace JSONL spans.
#[must_use]
pub fn render(s: &Snapshot, trace_spans: Option<&BTreeMap<String, (f64, u64)>>) -> String {
    let mut out = String::with_capacity(4096);
    let _ = writeln!(
        out,
        "# sgs run report — {} on {}",
        s.meta.bin, s.meta.circuit
    );
    let _ = writeln!(
        out,
        "git_sha={} threads={} timestamp={} schema_version={}",
        s.meta.git_sha, s.meta.threads, s.meta.timestamp, s.schema_version
    );
    let run_seconds = s.gauges.get("run_seconds").copied().unwrap_or(f64::NAN);
    match s.coverage() {
        Some(cov) => {
            let _ = writeln!(
                out,
                "wall clock: {:.3} s — profile coverage {:.1}%",
                run_seconds,
                cov * 100.0
            );
        }
        None => {
            let _ = writeln!(out, "wall clock: {run_seconds:.3} s");
        }
    }

    out.push_str("\n## phase profile\n\n");
    let _ = writeln!(
        out,
        "{:<34} {:>10} {:>10} {:>7}",
        "phase", "total [s]", "self [s]", "count"
    );
    let roots: Vec<&str> = s
        .phases
        .values()
        .filter(|p| p.parent.is_none() && p.count > 0)
        .map(|p| p.name.as_str())
        .collect();
    for root in roots {
        render_phase(s, root, 0, &mut out);
    }

    out.push_str("\n## histograms\n\n");
    let _ = writeln!(
        out,
        "{:<26} {:>7} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "histogram", "count", "p50", "p90", "p99", "max", "sum"
    );
    for (name, h) in &s.hists {
        if h.count == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{:<26} {:>7} {:>12.4e} {:>12.4e} {:>12.4e} {:>12.4e} {:>12.4e}",
            name, h.count, h.p50, h.p90, h.p99, h.max, h.sum
        );
    }

    out.push_str("\n## counters\n\n");
    for (name, v) in &s.counters {
        if *v > 0 {
            let _ = writeln!(out, "{name:<34} {v}");
        }
    }

    out.push_str("\n## gauges\n\n");
    for (name, v) in &s.gauges {
        let _ = writeln!(out, "{name:<34} {v}");
    }

    if let Some(spans) = trace_spans {
        out.push_str("\n## trace spans (aggregated from JSONL)\n\n");
        let _ = writeln!(out, "{:<34} {:>12} {:>7}", "phase", "seconds", "spans");
        for (name, (secs, count)) in spans {
            let _ = writeln!(out, "{name:<34} {secs:>12.6} {count:>7}");
        }
    }
    out
}

fn render_phase(s: &Snapshot, name: &str, depth: usize, out: &mut String) {
    let Some(p) = s.phases.get(name) else { return };
    let children: Vec<&str> = s
        .phases
        .values()
        .filter(|c| c.parent.as_deref() == Some(name) && c.count > 0)
        .map(|c| c.name.as_str())
        .collect();
    let child_total: f64 = children
        .iter()
        .filter_map(|c| s.phases.get(*c))
        .map(|c| c.seconds)
        .sum();
    let self_secs = (p.seconds - child_total).max(0.0);
    let label = format!("{}{}", "  ".repeat(depth), p.name);
    let _ = writeln!(
        out,
        "{:<34} {:>10.4} {:>10.4} {:>7}",
        label, p.seconds, self_secs, p.count
    );
    for c in children {
        render_phase(s, c, depth + 1, out);
    }
}

/// Aggregates `phase_span` events of a trace JSONL document into
/// per-phase `(total_seconds, span_count)`.
///
/// # Errors
///
/// Returns a line-annotated message on malformed JSONL.
pub fn aggregate_trace_spans(text: &str) -> Result<BTreeMap<String, (f64, u64)>, String> {
    let mut spans: BTreeMap<String, (f64, u64)> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if v.get("event").and_then(Json::as_str) != Some("phase_span") {
            continue;
        }
        let phase = v
            .get("phase")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: phase_span without phase", lineno + 1))?;
        let seconds = v
            .get("seconds")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("line {}: phase_span without seconds", lineno + 1))?;
        let e = spans.entry(phase.to_string()).or_insert((0.0, 0));
        e.0 += seconds;
        e.1 += 1;
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{Metadata, PhaseSnap, SCHEMA_VERSION};

    #[test]
    fn render_produces_tree_and_tables() {
        let mut phases = BTreeMap::new();
        for (name, parent, secs) in [
            ("solve", None, 1.0),
            ("auglag", Some("solve"), 0.8),
            ("inner_tr", Some("auglag"), 0.6),
        ] {
            phases.insert(
                name.to_string(),
                PhaseSnap {
                    name: name.to_string(),
                    parent: parent.map(str::to_string),
                    seconds: secs,
                    count: 1,
                },
            );
        }
        let mut gauges = BTreeMap::new();
        gauges.insert("run_seconds".to_string(), 1.02);
        let s = Snapshot {
            schema_version: SCHEMA_VERSION,
            meta: Metadata {
                bin: "size_blif".into(),
                circuit: "tree7".into(),
                git_sha: "abc".into(),
                threads: 1,
                timestamp: "t".into(),
            },
            counters: BTreeMap::new(),
            gauges,
            hists: BTreeMap::new(),
            phases,
        };
        let text = render(&s, None);
        assert!(text.contains("profile coverage 98.0%"), "{text}");
        assert!(text.contains("  auglag"), "{text}");
        assert!(text.contains("    inner_tr"), "{text}");
    }

    #[test]
    fn trace_aggregation_sums_spans() {
        let jsonl = "\
{\"event\":\"phase_span\",\"phase\":\"auglag\",\"seconds\":0.5}
{\"event\":\"phase_span\",\"phase\":\"auglag\",\"seconds\":0.25}
{\"event\":\"counter\",\"name\":\"x\",\"value\":1}
";
        let spans = aggregate_trace_spans(jsonl).unwrap();
        assert_eq!(spans["auglag"], (0.75, 2));
        assert!(aggregate_trace_spans("garbage\n").is_err());
    }
}
