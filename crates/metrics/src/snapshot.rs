//! Versioned run-snapshot schema: serialisation, parsing and linting.
//!
//! A snapshot is one JSON document per run:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "metadata": { "bin": "...", "circuit": "...", "git_sha": "...",
//!                 "threads": 1, "timestamp": "..." },
//!   "counters":   { "nlp_solves": 1, ... },
//!   "gauges":     { "run_seconds": 1.25, ... },
//!   "histograms": { "nlp_outer_seconds": { "count": 9, "sum": ...,
//!                   "min": ..., "max": ..., "p50": ..., "p90": ...,
//!                   "p99": ..., "buckets": [[idx, count], ...],
//!                   "exact": [..] }, ... },
//!   "phases":     { "auglag": { "parent": "solve", "seconds": ...,
//!                   "count": 1 }, ... }
//! }
//! ```
//!
//! All metadata is caller-supplied ([`Metadata`]); timestamps and git
//! shas are passed in by binaries, never sampled here. Numbers use Rust's
//! shortest round-trip formatting with the same `"NaN"`/`"Infinity"`
//! string escapes as `sgs_trace::json`, whose parser this module reuses —
//! a parse → serialise round trip is byte-identical.

use crate::hist::{HistSnapshot, N_BUCKETS};
use sgs_trace::json::{parse_json, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Version tag of the snapshot (and unified `BENCH_*.json`) schema.
pub const SCHEMA_VERSION: u32 = 1;

/// Caller-supplied run identity attached to every snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metadata {
    /// Producing binary name.
    pub bin: String,
    /// Circuit or workload identifier.
    pub circuit: String,
    /// Git revision of the producing build (`"unknown"` when absent).
    pub git_sha: String,
    /// Worker-thread count the run was configured with.
    pub threads: usize,
    /// Caller-supplied wall-clock timestamp (free-form string).
    pub timestamp: String,
}

/// One node of the serialised phase-profile tree.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSnap {
    /// Phase name.
    pub name: String,
    /// Parent phase name (`None` for profile roots).
    pub parent: Option<String>,
    /// Accumulated wall-clock seconds.
    pub seconds: f64,
    /// Completed span count.
    pub count: u64,
}

/// A full, owned run snapshot (the registry's exportable state).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Schema version tag ([`SCHEMA_VERSION`] when produced here).
    pub schema_version: u32,
    /// Run identity.
    pub meta: Metadata,
    /// Counter values by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by metric name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by metric name.
    pub hists: BTreeMap<String, HistSnapshot>,
    /// Phase-profile nodes by phase name.
    pub phases: BTreeMap<String, PhaseSnap>,
}

fn push_str_json(out: &mut String, val: &str) {
    out.push('"');
    for ch in val.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64_json(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else if v.is_nan() {
        out.push_str("\"NaN\"");
    } else if v > 0.0 {
        out.push_str("\"Infinity\"");
    } else {
        out.push_str("\"-Infinity\"");
    }
}

impl Snapshot {
    /// Serialises the snapshot as a multi-line JSON document (stable key
    /// order, friendly to committed baselines and text diffs).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema_version\": {},", self.schema_version);
        s.push_str("  \"metadata\": {\"bin\": ");
        push_str_json(&mut s, &self.meta.bin);
        s.push_str(", \"circuit\": ");
        push_str_json(&mut s, &self.meta.circuit);
        s.push_str(", \"git_sha\": ");
        push_str_json(&mut s, &self.meta.git_sha);
        let _ = write!(s, ", \"threads\": {}, \"timestamp\": ", self.meta.threads);
        push_str_json(&mut s, &self.meta.timestamp);
        s.push_str("},\n");

        s.push_str("  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("    ");
            push_str_json(&mut s, k);
            let _ = write!(s, ": {v}");
        }
        s.push_str("\n  },\n");

        s.push_str("  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("    ");
            push_str_json(&mut s, k);
            s.push_str(": ");
            push_f64_json(&mut s, *v);
        }
        s.push_str("\n  },\n");

        s.push_str("  \"histograms\": {");
        for (i, (k, h)) in self.hists.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("    ");
            push_str_json(&mut s, k);
            let _ = write!(s, ": {{\"count\": {}, \"sum\": ", h.count);
            push_f64_json(&mut s, h.sum);
            s.push_str(", \"min\": ");
            push_f64_json(&mut s, h.min);
            s.push_str(", \"max\": ");
            push_f64_json(&mut s, h.max);
            s.push_str(", \"p50\": ");
            push_f64_json(&mut s, h.p50);
            s.push_str(", \"p90\": ");
            push_f64_json(&mut s, h.p90);
            s.push_str(", \"p99\": ");
            push_f64_json(&mut s, h.p99);
            s.push_str(", \"buckets\": [");
            for (j, (idx, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "[{idx}, {c}]");
            }
            s.push(']');
            if let Some(xs) = &h.exact {
                s.push_str(", \"exact\": [");
                for (j, v) in xs.iter().enumerate() {
                    if j > 0 {
                        s.push_str(", ");
                    }
                    push_f64_json(&mut s, *v);
                }
                s.push(']');
            }
            s.push('}');
        }
        s.push_str("\n  },\n");

        s.push_str("  \"phases\": {");
        for (i, (k, p)) in self.phases.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("    ");
            push_str_json(&mut s, k);
            s.push_str(": {\"parent\": ");
            match &p.parent {
                Some(parent) => push_str_json(&mut s, parent),
                None => s.push_str("null"),
            }
            s.push_str(", \"seconds\": ");
            push_f64_json(&mut s, p.seconds);
            let _ = write!(s, ", \"count\": {}}}", p.count);
        }
        s.push_str("\n  }\n}\n");
        s
    }

    /// Parses a snapshot back from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed or missing field. Unknown
    /// schema versions parse (compare reports them as drift); unknown
    /// *fields* are ignored, missing required fields error.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let v = parse_json(text)?;
        let schema_version = v
            .get("schema_version")
            .and_then(Json::as_f64)
            .ok_or("missing numeric \"schema_version\"")? as u32;
        let md = v.get("metadata").ok_or("missing \"metadata\" object")?;
        let meta = Metadata {
            bin: req_str(md, "bin")?,
            circuit: req_str(md, "circuit")?,
            git_sha: req_str(md, "git_sha")?,
            threads: req_f64(md, "threads")? as usize,
            timestamp: req_str(md, "timestamp")?,
        };
        let mut counters = BTreeMap::new();
        for (k, val) in req_obj(&v, "counters")? {
            let n = val
                .as_f64()
                .ok_or_else(|| format!("counter {k} is not a number"))?;
            counters.insert(k.clone(), n as u64);
        }
        let mut gauges = BTreeMap::new();
        for (k, val) in req_obj(&v, "gauges")? {
            let n = val
                .as_f64()
                .ok_or_else(|| format!("gauge {k} is not a number"))?;
            gauges.insert(k.clone(), n);
        }
        let mut hists = BTreeMap::new();
        for (k, val) in req_obj(&v, "histograms")? {
            hists.insert(k.clone(), parse_hist(k, val)?);
        }
        let mut phases = BTreeMap::new();
        for (k, val) in req_obj(&v, "phases")? {
            let parent = match val.get("parent") {
                Some(Json::Null) | None => None,
                Some(p) => Some(
                    p.as_str()
                        .ok_or_else(|| format!("phase {k}: parent is not a string"))?
                        .to_string(),
                ),
            };
            phases.insert(
                k.clone(),
                PhaseSnap {
                    name: k.clone(),
                    parent,
                    seconds: req_f64(val, "seconds").map_err(|e| format!("phase {k}: {e}"))?,
                    count: req_f64(val, "count").map_err(|e| format!("phase {k}: {e}"))? as u64,
                },
            );
        }
        Ok(Snapshot {
            schema_version,
            meta,
            counters,
            gauges,
            hists,
            phases,
        })
    }

    /// Fraction of [`run_seconds`](crate::Gauge::RunSeconds) covered by
    /// root profile phases (`None` when `run_seconds` is absent or zero).
    #[must_use]
    pub fn coverage(&self) -> Option<f64> {
        let total = *self.gauges.get("run_seconds")?;
        if total.is_nan() || total <= 0.0 {
            return None;
        }
        let roots: f64 = self
            .phases
            .values()
            .filter(|p| p.parent.is_none())
            .map(|p| p.seconds)
            .sum();
        Some(roots / total)
    }

    /// Structural schema lint (the `sgs_report lint` gate): parses `text`
    /// and verifies internal invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: wrong schema version, empty
    /// metadata fields, histogram count/bucket mismatches, out-of-range
    /// bucket indices, unsorted quantiles, or dangling phase parents.
    pub fn lint(text: &str) -> Result<Snapshot, String> {
        let s = Snapshot::from_json(text)?;
        if s.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} (expected {SCHEMA_VERSION})",
                s.schema_version
            ));
        }
        if s.meta.bin.is_empty() {
            return Err("metadata.bin is empty".into());
        }
        if s.meta.git_sha.is_empty() {
            return Err("metadata.git_sha is empty".into());
        }
        if s.meta.timestamp.is_empty() {
            return Err("metadata.timestamp is empty".into());
        }
        if !s.gauges.contains_key("run_seconds") {
            return Err("gauge run_seconds is missing".into());
        }
        for (name, h) in &s.hists {
            let bucket_total: u64 = h.buckets.values().sum();
            if bucket_total != h.count {
                return Err(format!(
                    "histogram {name}: bucket counts sum to {bucket_total}, count is {}",
                    h.count
                ));
            }
            if let Some((&idx, _)) = h.buckets.last_key_value() {
                if idx as usize >= N_BUCKETS {
                    return Err(format!("histogram {name}: bucket index {idx} out of range"));
                }
            }
            if let Some(xs) = &h.exact {
                if xs.len() as u64 != h.count {
                    return Err(format!(
                        "histogram {name}: {} exact samples for count {}",
                        xs.len(),
                        h.count
                    ));
                }
            }
            if h.count > 0 {
                if h.min.total_cmp(&h.max) == std::cmp::Ordering::Greater {
                    return Err(format!("histogram {name}: min > max"));
                }
                for (a, b, la, lb) in [
                    (h.p50, h.p90, "p50", "p90"),
                    (h.p90, h.p99, "p90", "p99"),
                    (h.p99, h.max, "p99", "max"),
                ] {
                    if a.total_cmp(&b) == std::cmp::Ordering::Greater {
                        return Err(format!("histogram {name}: {la} > {lb}"));
                    }
                }
            }
        }
        for (name, p) in &s.phases {
            if let Some(parent) = &p.parent {
                if !s.phases.contains_key(parent) {
                    return Err(format!("phase {name}: unknown parent {parent}"));
                }
            }
        }
        Ok(s)
    }
}

fn req_obj<'a>(v: &'a Json, key: &str) -> Result<&'a BTreeMap<String, Json>, String> {
    match v.get(key) {
        Some(Json::Obj(m)) => Ok(m),
        _ => Err(format!("missing \"{key}\" object")),
    }
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string \"{key}\""))
}

fn req_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing number \"{key}\""))
}

fn parse_hist(name: &str, v: &Json) -> Result<HistSnapshot, String> {
    let ctx = |e: String| format!("histogram {name}: {e}");
    let mut buckets = BTreeMap::new();
    match v.get("buckets") {
        Some(Json::Arr(items)) => {
            for item in items {
                let Json::Arr(pair) = item else {
                    return Err(ctx("bucket entry is not a pair".into()));
                };
                let (Some(idx), Some(c)) = (
                    pair.first().and_then(Json::as_f64),
                    pair.get(1).and_then(Json::as_f64),
                ) else {
                    return Err(ctx("bucket pair is not numeric".into()));
                };
                buckets.insert(idx as u32, c as u64);
            }
        }
        _ => return Err(ctx("missing \"buckets\" array".into())),
    }
    let exact = match v.get("exact") {
        Some(Json::Arr(items)) => {
            let mut xs = Vec::with_capacity(items.len());
            for item in items {
                xs.push(
                    item.as_f64()
                        .ok_or_else(|| ctx("exact sample is not numeric".into()))?,
                );
            }
            Some(xs)
        }
        Some(_) => return Err(ctx("\"exact\" is not an array".into())),
        None => None,
    };
    Ok(HistSnapshot {
        name: name.to_string(),
        count: req_f64(v, "count").map_err(ctx)? as u64,
        sum: req_f64(v, "sum").map_err(ctx)?,
        min: req_f64(v, "min").map_err(ctx)?,
        max: req_f64(v, "max").map_err(ctx)?,
        p50: req_f64(v, "p50").map_err(ctx)?,
        p90: req_f64(v, "p90").map_err(ctx)?,
        p99: req_f64(v, "p99").map_err(ctx)?,
        buckets,
        exact,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn sample() -> Snapshot {
        let h = Histogram::new();
        for v in [0.1, 0.2, 0.4] {
            h.observe(v);
        }
        let mut hists = BTreeMap::new();
        hists.insert(
            "nlp_outer_seconds".to_string(),
            h.snapshot("nlp_outer_seconds"),
        );
        let mut counters = BTreeMap::new();
        counters.insert("nlp_solves".to_string(), 1);
        let mut gauges = BTreeMap::new();
        gauges.insert("run_seconds".to_string(), 1.5);
        let mut phases = BTreeMap::new();
        phases.insert(
            "solve".to_string(),
            PhaseSnap {
                name: "solve".to_string(),
                parent: None,
                seconds: 1.45,
                count: 1,
            },
        );
        phases.insert(
            "auglag".to_string(),
            PhaseSnap {
                name: "auglag".to_string(),
                parent: Some("solve".to_string()),
                seconds: 1.2,
                count: 1,
            },
        );
        Snapshot {
            schema_version: SCHEMA_VERSION,
            meta: Metadata {
                bin: "size_blif".into(),
                circuit: "tree7".into(),
                git_sha: "deadbeef".into(),
                threads: 1,
                timestamp: "2026-01-01T00:00:00Z".into(),
            },
            counters,
            gauges,
            hists,
            phases,
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let s = sample();
        let text = s.to_json();
        let back = Snapshot::from_json(&text).unwrap();
        assert_eq!(back, s);
        // Serialise-parse-serialise is byte-identical.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn lint_accepts_real_snapshots_and_rejects_corruption() {
        let s = sample();
        assert!(Snapshot::lint(&s.to_json()).is_ok());

        let mut bad = s.clone();
        bad.hists.get_mut("nlp_outer_seconds").unwrap().count += 1;
        assert!(Snapshot::lint(&bad.to_json())
            .unwrap_err()
            .contains("bucket counts"));

        let mut bad = s.clone();
        bad.phases.get_mut("auglag").unwrap().parent = Some("nonexistent".into());
        assert!(Snapshot::lint(&bad.to_json())
            .unwrap_err()
            .contains("unknown parent"));

        let mut bad = s;
        bad.schema_version = 99;
        assert!(Snapshot::lint(&bad.to_json())
            .unwrap_err()
            .contains("schema_version"));
    }

    #[test]
    fn coverage_sums_root_phases() {
        let s = sample();
        let cov = s.coverage().unwrap();
        assert!((cov - 1.45 / 1.5).abs() < 1e-12, "coverage {cov}");
    }

    #[test]
    fn malformed_documents_error_not_panic() {
        assert!(Snapshot::from_json("not json").is_err());
        assert!(Snapshot::from_json("{}").is_err());
        assert!(Snapshot::from_json("{\"schema_version\": 1}").is_err());
    }
}
