//! Prometheus text exposition of a run snapshot (`--metrics-prom`).
//!
//! Standard text format, version 0.0.4: counters as `counter`, gauges as
//! `gauge`, histograms as `summary` (quantile labels + `_sum`/`_count`),
//! phase timings as two labelled gauge families. All families carry the
//! `sgs_` prefix.

use crate::snapshot::Snapshot;
use std::fmt::Write as _;

fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders the snapshot in Prometheus text exposition format.
#[must_use]
pub fn to_prometheus(s: &Snapshot) -> String {
    let mut out = String::with_capacity(4096);
    let _ = writeln!(
        out,
        "# HELP sgs_build_info Run identity (value is always 1)."
    );
    let _ = writeln!(out, "# TYPE sgs_build_info gauge");
    let _ = writeln!(
        out,
        "sgs_build_info{{bin=\"{}\",circuit=\"{}\",git_sha=\"{}\",threads=\"{}\"}} 1",
        s.meta.bin, s.meta.circuit, s.meta.git_sha, s.meta.threads
    );
    for (name, v) in &s.counters {
        let _ = writeln!(out, "# TYPE sgs_{name} counter");
        let _ = writeln!(out, "sgs_{name} {v}");
    }
    for (name, v) in &s.gauges {
        let _ = writeln!(out, "# TYPE sgs_{name} gauge");
        let _ = writeln!(out, "sgs_{name} {}", prom_f64(*v));
    }
    for (name, h) in &s.hists {
        let _ = writeln!(out, "# TYPE sgs_{name} summary");
        for (q, v) in [(0.5, h.p50), (0.9, h.p90), (0.99, h.p99)] {
            let _ = writeln!(out, "sgs_{name}{{quantile=\"{q}\"}} {}", prom_f64(v));
        }
        let _ = writeln!(out, "sgs_{name}_sum {}", prom_f64(h.sum));
        let _ = writeln!(out, "sgs_{name}_count {}", h.count);
    }
    let _ = writeln!(out, "# TYPE sgs_phase_seconds gauge");
    for (name, p) in &s.phases {
        let _ = writeln!(
            out,
            "sgs_phase_seconds{{phase=\"{name}\"}} {}",
            prom_f64(p.seconds)
        );
    }
    let _ = writeln!(out, "# TYPE sgs_phase_count gauge");
    for (name, p) in &s.phases {
        let _ = writeln!(out, "sgs_phase_count{{phase=\"{name}\"}} {}", p.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{Metadata, SCHEMA_VERSION};
    use std::collections::BTreeMap;

    #[test]
    fn exposition_contains_all_families() {
        let mut counters = BTreeMap::new();
        counters.insert("nlp_solves".to_string(), 4u64);
        let mut gauges = BTreeMap::new();
        gauges.insert("run_seconds".to_string(), 0.5);
        let s = Snapshot {
            schema_version: SCHEMA_VERSION,
            meta: Metadata::default(),
            counters,
            gauges,
            hists: BTreeMap::new(),
            phases: BTreeMap::new(),
        };
        let text = to_prometheus(&s);
        assert!(text.contains("# TYPE sgs_nlp_solves counter"));
        assert!(text.contains("sgs_nlp_solves 4"));
        assert!(text.contains("sgs_run_seconds 0.5"));
        assert!(text.contains("sgs_build_info"));
    }
}
