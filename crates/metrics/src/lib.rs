//! Process-wide metrics registry for the sgs stack.
//!
//! `sgs-trace` (PR 2) reports raw *events*; this crate is the aggregation
//! layer that turns them into an operable telemetry surface: counters,
//! gauges, log-bucketed [`hist::Histogram`]s and a hierarchical wall-clock
//! [`Phase`] profile, all held in `static` fixed-size atomic storage — the
//! same process-global-atomic idiom as `sgs_statmath::clark::var_clamp_count`,
//! generalised.
//!
//! Design rules:
//!
//! - **Disabled by default, one relaxed load to stay that way.** Every
//!   hot-path entry point ([`add`], [`observe`], [`set_gauge`], [`phase`],
//!   [`time_hist`]) checks a single `AtomicBool` and returns; the disabled
//!   path reads no clock, takes no lock and allocates nothing
//!   (`tests/alloc_disabled.rs` pins this with a counting global
//!   allocator). Instrumented solver code therefore never changes
//!   behaviour or numerics — metrics only *observe*.
//! - **Lock-free when enabled.** Metric identities are compile-time enums
//!   ([`Counter`], [`Gauge`], [`HistId`], [`Phase`]) indexing fixed
//!   `static` atomic arrays: recording is a relaxed `fetch_add`/CAS on
//!   pre-existing storage. The fixed metric set is also what makes run
//!   snapshots a *versioned schema* that `sgs_report compare` can diff
//!   run-to-run.
//! - **No clock reads the library owns the meaning of.** Snapshot
//!   metadata (git sha, thread count, circuit, timestamp) is passed in by
//!   the binary; the library never calls `Date::now`-equivalents for
//!   anything but interval measurement.
//!
//! The registry is process-global, so tests that enable it must
//! serialise against each other (see `tests/integration_metrics.rs`,
//! which shares one `Mutex`).

pub mod alloc;
pub mod compare;
pub mod hist;
pub mod prom;
pub mod report;
pub mod snapshot;
pub mod window;

pub use compare::{compare, CompareOptions, CompareOutcome};
pub use hist::{HistSnapshot, Histogram};
pub use snapshot::{Metadata, PhaseSnap, Snapshot, SCHEMA_VERSION};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

macro_rules! metric_enum {
    ($(#[$em:meta])* $name:ident { $($(#[$vm:meta])* $var:ident => $s:literal,)+ }) => {
        $(#[$em])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum $name {
            $($(#[$vm])* $var,)+
        }

        impl $name {
            /// Number of variants (storage array length).
            pub const COUNT: usize = [$($name::$var),+].len();
            /// Every variant in declaration order.
            pub const ALL: [$name; Self::COUNT] = [$($name::$var),+];

            /// Stable snake_case name used in snapshots and exposition.
            #[must_use]
            pub const fn name(self) -> &'static str {
                match self { $($name::$var => $s,)+ }
            }
        }
    };
}

metric_enum! {
    /// Monotone event counters.
    Counter {
        /// Augmented-Lagrangian solver invocations.
        NlpSolves => "nlp_solves",
        /// Outer (multiplier/penalty) iterations across all solves.
        NlpOuterIterations => "nlp_outer_iterations",
        /// Inner trust-region iterations across all solves.
        NlpInnerIterations => "nlp_inner_iterations",
        /// Inner CG iterations across all solves.
        NlpCgIterations => "nlp_cg_iterations",
        /// Solves that ended in divergence (NaN/Inf guard tripped).
        NlpDiverged => "nlp_diverged",
        /// Warm starts offered to the solver.
        NlpWarmOffered => "nlp_warm_start_offered",
        /// Warm starts accepted (dimension/finiteness checks passed).
        NlpWarmAccepted => "nlp_warm_start_accepted",
        /// Objective evaluations performed by the cached problem.
        NlpEvalsObjective => "nlp_evals_objective",
        /// Objective-gradient evaluations.
        NlpEvalsGradient => "nlp_evals_gradient",
        /// Constraint-vector evaluations.
        NlpEvalsConstraints => "nlp_evals_constraints",
        /// Jacobian-value evaluations.
        NlpEvalsJacobian => "nlp_evals_jacobian",
        /// Lagrangian-Hessian evaluations.
        NlpEvalsHessian => "nlp_evals_hessian",
        /// `Sizer::solve` invocations.
        SizerSolves => "sizer_solves",
        /// Perturbed-restart attempts in the divergence-recovery ladder.
        SizerRestarts => "sizer_restarts",
        /// Solves that fell through to the greedy fallback.
        SizerGreedyFallbacks => "sizer_greedy_fallbacks",
        /// Solves rejected by a preflight analyzer gate.
        SizerPreflightRejections => "sizer_preflight_rejections",
        /// Clark max variance clamps fired during solves.
        ClarkVarClamps => "clark_var_clamps",
        /// Warm-started re-solves performed by `Resolver`.
        ResolveSolves => "resolve_solves",
        /// Evaluation-only what-if queries served by `Resolver`.
        ResolveWhatIfQueries => "resolve_what_if_queries",
        /// Full (from-scratch) SSTA passes.
        SstaFullPasses => "ssta_full_passes",
        /// Incremental SSTA update calls.
        SstaIncrementalUpdates => "ssta_incremental_updates",
        /// Gates re-timed by incremental updates.
        SstaGatesRecomputed => "ssta_gates_recomputed",
        /// Gates pruned by incremental bit-equality early termination.
        SstaFrontierPruned => "ssta_frontier_pruned",
        /// Monte Carlo runs.
        McRuns => "mc_runs",
        /// Monte Carlo trials drawn across all runs.
        McSamples => "mc_samples",
        /// Static-analyzer invocations.
        AnalyzeRuns => "analyze_runs",
        /// Error-severity diagnostics reported by the analyzer.
        AnalyzeErrors => "analyze_errors",
        /// Warning-severity diagnostics reported by the analyzer.
        AnalyzeWarnings => "analyze_warnings",
        /// Parallel write plans certified by analyzer stage 4.
        AnalyzePlans => "analyze_plans_checked",
        /// Parallel units examined across all certified write plans.
        AnalyzePlanUnits => "analyze_plan_units_checked",
        /// Frontier points traced by `SweepEngine` sweeps (feasible or
        /// not, including cache-served repeats).
        SweepPoints => "sweep_points",
        /// Sweep points whose re-solve accepted the carried warm start.
        SweepWarmHits => "sweep_warm_hits",
        /// Extra points inserted by adaptive knee refinement.
        SweepRefinements => "sweep_refinements",
        /// Sweep points whose deadline proved infeasible.
        SweepInfeasible => "sweep_infeasible_points",
        /// No-op sweep steps answered from the last accepted point
        /// without re-solving (repeated deadline).
        SweepCacheHits => "sweep_cache_hits",
        /// HTTP requests parsed and routed by the `sgs-serve` daemon
        /// (rejected-at-admission connections are counted separately).
        ServeRequests => "serve_requests",
        /// Requests answered with a structured 4xx/5xx error body.
        ServeErrors => "serve_errors",
        /// Connections rejected with `429 Retry-After` because the
        /// admission queue was full.
        ServeRejectedSaturated => "serve_rejected_saturated",
        /// Session-store lookups answered by an existing warm session.
        ServeSessionHits => "serve_session_hits",
        /// Session-store lookups that created a new (cold) session.
        ServeSessionMisses => "serve_session_misses",
        /// Warm sessions evicted by the LRU policy to admit a new one.
        ServeSessionEvictions => "serve_session_evictions",
    }
}

metric_enum! {
    /// Last-value gauges.
    Gauge {
        /// Objective value at the end of the most recent NLP solve.
        NlpLastObjective => "nlp_last_objective",
        /// Constraint infinity norm at the end of the most recent solve.
        NlpLastCNorm => "nlp_last_c_norm",
        /// Projected-gradient norm at the end of the most recent solve.
        NlpLastPgNorm => "nlp_last_pg_norm",
        /// Wall-clock seconds of the whole run (set by the binary).
        RunSeconds => "run_seconds",
        /// Connections waiting in the `sgs-serve` admission queue.
        ServeQueueDepth => "serve_queue_depth",
        /// Warm sessions currently held by the `sgs-serve` session store.
        ServeSessionsLive => "serve_sessions_live",
    }
}

metric_enum! {
    /// Log-bucketed histogram identities.
    HistId {
        /// Wall-clock seconds per augmented-Lagrangian outer iteration.
        NlpOuterSeconds => "nlp_outer_seconds",
        /// Wall-clock seconds per full SSTA pass.
        SstaFullSeconds => "ssta_full_seconds",
        /// Gates recomputed per incremental SSTA update.
        SstaIncrementalGates => "ssta_incremental_gates",
        /// Wall-clock seconds per what-if query.
        WhatIfSeconds => "what_if_seconds",
        /// Wall-clock seconds per traced sweep point (solve included).
        SweepPointSeconds => "sweep_point_seconds",
        /// Served `/solve` request latency (parse to response body).
        ServeSolveSeconds => "serve_solve_seconds",
        /// Served `/resolve` request latency.
        ServeResolveSeconds => "serve_resolve_seconds",
        /// Served `/what_if` request latency.
        ServeWhatIfSeconds => "serve_what_if_seconds",
        /// Served `/analyze` request latency.
        ServeAnalyzeSeconds => "serve_analyze_seconds",
        /// Seconds each parsed request spent in the admission (accept)
        /// queue before a connection worker picked it up.
        ServeQueueWaitSeconds => "serve_queue_wait_seconds",
        /// Seconds each sizing request spent in its session worker's job
        /// queue before the worker started it.
        ServeSessionWaitSeconds => "serve_session_wait_seconds",
    }
}

metric_enum! {
    /// Hierarchical wall-clock profile phases.
    ///
    /// Names deliberately match the `sgs-trace` phase-span names where a
    /// span already exists, so trace JSONL and metrics snapshots agree.
    Phase {
        /// Circuit/library loading (binary-level).
        Load => "load",
        /// Unsized baseline SSTA and its reporting (binary-level).
        Baseline => "baseline",
        /// One full sizing solve (`Sizer::solve` / `Resolver` re-solve).
        Solve => "solve",
        /// Preflight analyzer gate inside a solve.
        Preflight => "preflight",
        /// Reduced-space (adjoint-gradient) sizing pass inside a
        /// solve: the whole solve under `SolverChoice::ReducedSpace`,
        /// the full-space solver's warm-start seed otherwise.
        ReducedSpace => "reduced_space",
        /// Sizing-problem construction inside a solve.
        BuildProblem => "build_problem",
        /// The augmented-Lagrangian optimisation itself.
        Auglag => "auglag",
        /// Inner trust-region solves inside `auglag`.
        InnerTr => "inner_tr",
        /// Solution evaluation/packaging inside a solve.
        Evaluate => "evaluate",
        /// Greedy fallback ladder inside a solve.
        GreedyFallback => "greedy_fallback",
        /// Result-report assembly inside a solve.
        Report => "report",
        /// Standalone static-analyzer run.
        Analyze => "analyze",
        /// Analyzer stage 1: structural netlist lints.
        AnalyzeLints => "analyze_lints",
        /// Analyzer stage 2: interval safety proofs.
        AnalyzeIntervals => "analyze_intervals",
        /// Analyzer stage 3: derivative-structure verification.
        AnalyzeDerivatives => "analyze_derivatives",
        /// Analyzer stage 4: parallel write-plan race analysis.
        AnalyzePlans => "analyze_plans",
        /// Output emission: tables, reports, snapshot files (binary-level).
        Emit => "emit",
        /// One whole `SweepEngine` frontier/k/corner sweep.
        Sweep => "sweep",
        /// One frontier point inside `sweep` (warm re-solve + scoring).
        SweepPoint => "sweep_point",
    }
}

impl Phase {
    /// Parent phase in the profile tree (`None` for roots).
    #[must_use]
    pub const fn parent(self) -> Option<Phase> {
        match self {
            Phase::Load
            | Phase::Baseline
            | Phase::Solve
            | Phase::Analyze
            | Phase::Emit
            | Phase::Sweep => None,
            Phase::SweepPoint => Some(Phase::Sweep),
            Phase::Preflight
            | Phase::ReducedSpace
            | Phase::BuildProblem
            | Phase::Auglag
            | Phase::Evaluate
            | Phase::GreedyFallback
            | Phase::Report => Some(Phase::Solve),
            Phase::InnerTr => Some(Phase::Auglag),
            Phase::AnalyzeLints
            | Phase::AnalyzeIntervals
            | Phase::AnalyzeDerivatives
            | Phase::AnalyzePlans => Some(Phase::Analyze),
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static COUNTERS: [AtomicU64; Counter::COUNT] = [const { AtomicU64::new(0) }; Counter::COUNT];
/// Gauge slots hold `f64` bit patterns (initialised to `0.0`).
static GAUGES: [AtomicU64; Gauge::COUNT] = [const { AtomicU64::new(0) }; Gauge::COUNT];
static HISTS: [Histogram; HistId::COUNT] = [const { Histogram::new() }; HistId::COUNT];
static PHASE_NANOS: [AtomicU64; Phase::COUNT] = [const { AtomicU64::new(0) }; Phase::COUNT];
static PHASE_COUNTS: [AtomicU64; Phase::COUNT] = [const { AtomicU64::new(0) }; Phase::COUNT];

/// Whether the registry is recording. One relaxed load — this is the
/// entire cost of every instrumentation site while disabled.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on (process-wide).
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns recording off (process-wide).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Zeroes every counter, gauge, histogram and phase accumulator.
///
/// Tests that enable the registry call this under their shared lock;
/// binaries never need it.
pub fn reset() {
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    for g in &GAUGES {
        g.store(0, Ordering::Relaxed);
    }
    for h in &HISTS {
        h.reset();
    }
    for p in &PHASE_NANOS {
        p.store(0, Ordering::Relaxed);
    }
    for p in &PHASE_COUNTS {
        p.store(0, Ordering::Relaxed);
    }
    window::reset_windows();
}

/// Adds `n` to a counter (no-op while disabled).
#[inline]
pub fn add(c: Counter, n: u64) {
    if enabled() {
        COUNTERS[c as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Adds 1 to a counter (no-op while disabled).
#[inline]
pub fn incr(c: Counter) {
    add(c, 1);
}

/// Current counter value (0 while never enabled).
#[must_use]
pub fn counter_value(c: Counter) -> u64 {
    COUNTERS[c as usize].load(Ordering::Relaxed)
}

/// Stores a gauge value (no-op while disabled).
#[inline]
pub fn set_gauge(g: Gauge, v: f64) {
    if enabled() {
        GAUGES[g as usize].store(v.to_bits(), Ordering::Relaxed);
    }
}

/// Current gauge value.
#[must_use]
pub fn gauge_value(g: Gauge) -> f64 {
    f64::from_bits(GAUGES[g as usize].load(Ordering::Relaxed))
}

/// Records one histogram observation (no-op while disabled).
#[inline]
pub fn observe(h: HistId, v: f64) {
    if enabled() {
        HISTS[h as usize].observe(v);
    }
}

/// Snapshot of one registry histogram (mainly for tests).
#[must_use]
pub fn hist_snapshot(h: HistId) -> HistSnapshot {
    HISTS[h as usize].snapshot(h.name())
}

/// RAII guard accumulating wall-clock time into a [`Phase`].
///
/// Created by [`phase`]; on the disabled path it holds no start time and
/// its drop is free — no clock is ever read.
#[must_use = "a phase guard records time only when it is dropped"]
pub struct PhaseGuard {
    id: Phase,
    start: Option<Instant>,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            PHASE_NANOS[self.id as usize].fetch_add(nanos, Ordering::Relaxed);
            PHASE_COUNTS[self.id as usize].fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Starts timing a profile phase; the elapsed wall-clock is accumulated
/// when the returned guard drops. Free while disabled.
#[inline]
pub fn phase(id: Phase) -> PhaseGuard {
    PhaseGuard {
        id,
        start: enabled().then(Instant::now),
    }
}

/// RAII guard recording an elapsed-seconds observation into a histogram.
#[must_use = "a histogram timer records its observation only when dropped"]
pub struct HistTimer {
    id: HistId,
    start: Option<Instant>,
}

impl Drop for HistTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            HISTS[self.id as usize].observe(start.elapsed().as_secs_f64());
        }
    }
}

/// Starts timing one histogram observation (seconds on drop). Free while
/// disabled.
#[inline]
pub fn time_hist(id: HistId) -> HistTimer {
    HistTimer {
        id,
        start: enabled().then(Instant::now),
    }
}

/// Accumulated seconds in a phase so far (mainly for tests).
#[must_use]
pub fn phase_seconds(id: Phase) -> f64 {
    PHASE_NANOS[id as usize].load(Ordering::Relaxed) as f64 * 1e-9
}

/// Number of completed phase spans recorded for `id`.
#[must_use]
pub fn phase_count(id: Phase) -> u64 {
    PHASE_COUNTS[id as usize].load(Ordering::Relaxed)
}

/// Captures the entire registry as a versioned [`Snapshot`].
///
/// `meta` is caller-supplied — git sha, thread count, circuit and
/// timestamp are *inputs*, never sampled by the library.
#[must_use]
pub fn snapshot(meta: Metadata) -> Snapshot {
    let mut counters = std::collections::BTreeMap::new();
    for c in Counter::ALL {
        counters.insert(c.name().to_string(), counter_value(c));
    }
    counters.insert("alloc_calls".to_string(), alloc::allocation_calls());
    counters.insert("alloc_bytes".to_string(), alloc::allocation_bytes());
    let mut gauges = std::collections::BTreeMap::new();
    for g in Gauge::ALL {
        gauges.insert(g.name().to_string(), gauge_value(g));
    }
    // Sliding-window SLO quantiles: injected like the allocator counters
    // above — only for routes that saw traffic, so non-serve snapshots
    // are byte-identical to the pre-window schema.
    for r in window::Route::ALL {
        if let Some(q) = window::route_quantiles(r) {
            let n = r.name();
            gauges.insert(format!("serve_window_{n}_p50_seconds"), q.p50);
            gauges.insert(format!("serve_window_{n}_p95_seconds"), q.p95);
            gauges.insert(format!("serve_window_{n}_p99_seconds"), q.p99);
            counters.insert(format!("serve_window_{n}_requests"), q.count as u64);
        }
    }
    let mut hists = std::collections::BTreeMap::new();
    for h in HistId::ALL {
        hists.insert(h.name().to_string(), hist_snapshot(h));
    }
    let mut phases = std::collections::BTreeMap::new();
    for p in Phase::ALL {
        phases.insert(
            p.name().to_string(),
            PhaseSnap {
                name: p.name().to_string(),
                parent: p.parent().map(|q| q.name().to_string()),
                seconds: phase_seconds(p),
                count: phase_count(p),
            },
        );
    }
    Snapshot {
        schema_version: SCHEMA_VERSION,
        meta,
        counters,
        gauges,
        hists,
        phases,
    }
}

/// The registry is process-global; unit tests that enable, reset, or
/// read it must not interleave (also used by `window::tests`).
#[cfg(test)]
pub(crate) static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TEST_LOCK as LOCK;

    #[test]
    fn disabled_path_records_nothing() {
        let _g = LOCK.lock().unwrap();
        disable();
        reset();
        add(Counter::NlpSolves, 3);
        set_gauge(Gauge::RunSeconds, 1.5);
        observe(HistId::NlpOuterSeconds, 0.25);
        drop(phase(Phase::Solve));
        drop(time_hist(HistId::WhatIfSeconds));
        assert_eq!(counter_value(Counter::NlpSolves), 0);
        assert_eq!(gauge_value(Gauge::RunSeconds), 0.0);
        assert_eq!(hist_snapshot(HistId::NlpOuterSeconds).count, 0);
        assert_eq!(phase_count(Phase::Solve), 0);
    }

    #[test]
    fn enabled_path_records_and_resets() {
        let _g = LOCK.lock().unwrap();
        enable();
        reset();
        add(Counter::NlpSolves, 2);
        incr(Counter::NlpSolves);
        set_gauge(Gauge::NlpLastCNorm, 1e-9);
        observe(HistId::SstaIncrementalGates, 7.0);
        {
            let _p = phase(Phase::Auglag);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(counter_value(Counter::NlpSolves), 3);
        assert_eq!(gauge_value(Gauge::NlpLastCNorm), 1e-9);
        assert_eq!(hist_snapshot(HistId::SstaIncrementalGates).count, 1);
        assert_eq!(phase_count(Phase::Auglag), 1);
        assert!(phase_seconds(Phase::Auglag) > 0.0);
        disable();
        reset();
        assert_eq!(counter_value(Counter::NlpSolves), 0);
        assert_eq!(phase_count(Phase::Auglag), 0);
    }

    #[test]
    fn window_quantiles_gate_on_enabled_and_inject_into_snapshot() {
        let _g = LOCK.lock().unwrap();
        disable();
        reset();
        // Disabled: nothing recorded, nothing injected.
        window::observe_route(window::Route::Resolve, 0.25);
        assert!(window::route_quantiles(window::Route::Resolve).is_none());
        enable();
        for i in 1..=5 {
            window::observe_route(window::Route::Resolve, f64::from(i) * 0.1);
        }
        let s = snapshot(Metadata::default());
        assert_eq!(s.counters["serve_window_resolve_requests"], 5);
        assert!((s.gauges["serve_window_resolve_p50_seconds"] - 0.3).abs() < 1e-12);
        assert!(s.gauges.contains_key("serve_window_resolve_p99_seconds"));
        // Routes without traffic inject nothing.
        assert!(!s.gauges.contains_key("serve_window_analyze_p50_seconds"));
        disable();
        reset();
        assert!(window::route_quantiles(window::Route::Resolve).is_none());
    }

    #[test]
    fn snapshot_covers_every_declared_metric() {
        let _g = LOCK.lock().unwrap();
        disable();
        reset();
        let s = snapshot(Metadata::default());
        for c in Counter::ALL {
            assert!(s.counters.contains_key(c.name()), "missing {}", c.name());
        }
        assert!(s.counters.contains_key("alloc_calls"));
        assert!(s.counters.contains_key("alloc_bytes"));
        for g in Gauge::ALL {
            assert!(s.gauges.contains_key(g.name()));
        }
        for h in HistId::ALL {
            assert!(s.hists.contains_key(h.name()));
        }
        for p in Phase::ALL {
            let snap = &s.phases[p.name()];
            assert_eq!(snap.parent.as_deref(), p.parent().map(Phase::name));
        }
    }

    #[test]
    fn phase_parents_form_a_tree_rooted_at_none() {
        for p in Phase::ALL {
            let mut cur = p;
            let mut depth = 0;
            while let Some(parent) = cur.parent() {
                cur = parent;
                depth += 1;
                assert!(depth < 10, "cycle in phase parent chain at {}", p.name());
            }
        }
    }
}
