//! Log-bucketed concurrent histograms with an exact small-sample path.
//!
//! Bucketing follows the HDR/DDSketch family: a value's bucket is derived
//! directly from its IEEE-754 bit pattern — the unbiased exponent selects
//! a *binade* `[2^e, 2^(e+1))` and the top [`SUBBUCKET_BITS`] mantissa
//! bits split each binade into [`SUBBUCKETS`] geometric sub-buckets. The
//! relative width of every bucket is therefore at most `1/SUBBUCKETS`
//! (3.125%), which is the quantile-estimate error bound the differential
//! oracle in `tests/proptest_hist.rs` pins down.
//!
//! Binades outside `[2^MIN_EXP, 2^(MAX_EXP+1))` — roughly
//! `[9.1e-13, 4.4e12]`, ample for seconds, iteration counts and gate
//! counts — collapse into dedicated underflow/overflow buckets, as do
//! zero, negative and non-finite observations (which the instrumented
//! code never produces, but a histogram must not panic on).
//!
//! The first [`EXACT_CAP`] observations are additionally kept verbatim,
//! so small samples (the common case: one solve has a handful of outer
//! iterations) report *exact* nearest-rank quantiles; the bucket walk is
//! only consulted beyond the cap.
//!
//! Everything on the observe path is a handful of relaxed/CAS atomic
//! operations on fixed storage — no locks, no allocation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of mantissa bits used to subdivide each binade.
pub const SUBBUCKET_BITS: u32 = 5;
/// Geometric sub-buckets per binade (`2^SUBBUCKET_BITS`).
pub const SUBBUCKETS: usize = 1 << SUBBUCKET_BITS;
/// Smallest unbiased exponent with its own binade; values below fall in
/// the underflow bucket.
pub const MIN_EXP: i32 = -40;
/// Largest unbiased exponent with its own binade; values at or above
/// `2^(MAX_EXP+1)` fall in the overflow bucket.
pub const MAX_EXP: i32 = 40;
/// Number of resolved binades.
pub const N_BINADES: usize = (MAX_EXP - MIN_EXP + 1) as usize;
/// Total bucket count: underflow + resolved binades + overflow.
pub const N_BUCKETS: usize = 2 + N_BINADES * SUBBUCKETS;
/// Observations stored verbatim for the exact small-sample quantile path.
pub const EXACT_CAP: usize = 512;

/// Maps an observation to its bucket index.
///
/// Index `0` is the underflow bucket (zero, negatives, NaN, and positive
/// values below `2^MIN_EXP`); index `N_BUCKETS - 1` is the overflow
/// bucket (`+inf` and values at or above `2^(MAX_EXP+1)`).
#[must_use]
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    if v == f64::INFINITY {
        return N_BUCKETS - 1;
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023; // subnormals land at -1023
    if exp < MIN_EXP {
        return 0;
    }
    if exp > MAX_EXP {
        return N_BUCKETS - 1;
    }
    let sub = ((bits >> (52 - SUBBUCKET_BITS)) & (SUBBUCKETS as u64 - 1)) as usize;
    1 + ((exp - MIN_EXP) as usize) * SUBBUCKETS + sub
}

/// Half-open value range `[lo, hi)` covered by a bucket index (mantissa
/// truncation puts a value exactly at a bucket's lower edge *inside* that
/// bucket).
///
/// The underflow bucket reports `[0, 2^MIN_EXP)`; the overflow bucket
/// reports `[2^(MAX_EXP+1), +inf)`.
#[must_use]
pub fn bucket_bounds(idx: usize) -> (f64, f64) {
    assert!(idx < N_BUCKETS, "bucket index {idx} out of range");
    if idx == 0 {
        return (0.0, (2.0f64).powi(MIN_EXP));
    }
    if idx == N_BUCKETS - 1 {
        return ((2.0f64).powi(MAX_EXP + 1), f64::INFINITY);
    }
    let binade = MIN_EXP + ((idx - 1) / SUBBUCKETS) as i32;
    let sub = (idx - 1) % SUBBUCKETS;
    let scale = (2.0f64).powi(binade);
    (
        scale * (1.0 + sub as f64 / SUBBUCKETS as f64),
        scale * (1.0 + (sub + 1) as f64 / SUBBUCKETS as f64),
    )
}

/// A concurrent log-bucketed histogram (fixed storage, const-initialisable
/// so it can live in a `static` registry).
pub struct Histogram {
    count: AtomicU64,
    /// `f64` bit pattern of the running sum, advanced by CAS.
    sum_bits: AtomicU64,
    /// `f64` bit pattern of the minimum (starts at `+inf`).
    min_bits: AtomicU64,
    /// `f64` bit pattern of the maximum (starts at `-inf`).
    max_bits: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
    /// `f64` bit patterns of the first [`EXACT_CAP`] observations.
    exact: [AtomicU64; EXACT_CAP],
}

impl Histogram {
    /// An empty histogram (usable as a `static` initialiser).
    #[must_use]
    pub const fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0), // 0u64 == 0.0f64.to_bits()
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            buckets: [const { AtomicU64::new(0) }; N_BUCKETS],
            exact: [const { AtomicU64::new(0) }; EXACT_CAP],
        }
    }

    /// Records one observation. Lock-free: a few relaxed atomic RMWs.
    pub fn observe(&self, v: f64) {
        let idx = self.count.fetch_add(1, Ordering::Relaxed);
        if (idx as usize) < EXACT_CAP {
            self.exact[idx as usize].store(v.to_bits(), Ordering::Relaxed);
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        // CAS-add the sum; CAS min/max under the f64 total order.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        update_extreme(&self.min_bits, v, |cand, cur| {
            cand.total_cmp(&cur) == std::cmp::Ordering::Less
        });
        update_extreme(&self.max_bits, v, |cand, cur| {
            cand.total_cmp(&cur) == std::cmp::Ordering::Greater
        });
    }

    /// Total observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Clears all state back to the empty histogram.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0, Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        // `exact` slots beyond the live count are never read.
    }

    /// Captures the current contents as an owned [`HistSnapshot`].
    ///
    /// Intended to be taken quiescently (end of run / under test
    /// serialisation); concurrent observes are not torn, but may be
    /// partially included.
    #[must_use]
    pub fn snapshot(&self, name: &str) -> HistSnapshot {
        let count = self.count.load(Ordering::Acquire);
        let mut buckets = BTreeMap::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.insert(i as u32, c);
            }
        }
        let exact = if count as usize <= EXACT_CAP {
            let mut xs: Vec<f64> = self.exact[..count as usize]
                .iter()
                .map(|b| f64::from_bits(b.load(Ordering::Relaxed)))
                .collect();
            xs.sort_by(f64::total_cmp);
            Some(xs)
        } else {
            None
        };
        let mut snap = HistSnapshot {
            name: name.to_string(),
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
            p50: f64::NAN,
            p90: f64::NAN,
            p99: f64::NAN,
            buckets,
            exact,
        };
        snap.refresh_quantiles();
        snap
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

fn update_extreme(slot: &AtomicU64, v: f64, better: impl Fn(f64, f64) -> bool) {
    let mut cur = slot.load(Ordering::Relaxed);
    while better(v, f64::from_bits(cur)) {
        match slot.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(seen) => cur = seen,
        }
    }
}

/// An owned, mergeable histogram snapshot (what run snapshots serialise).
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// Stable metric name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Minimum observation (`+inf` when empty).
    pub min: f64,
    /// Maximum observation (`-inf` when empty).
    pub max: f64,
    /// Median estimate (exact below [`EXACT_CAP`] samples).
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
    /// Sparse nonzero bucket counts, keyed by bucket index.
    pub buckets: BTreeMap<u32, u64>,
    /// Sorted verbatim samples, present while `count <= EXACT_CAP`.
    pub exact: Option<Vec<f64>>,
}

impl HistSnapshot {
    /// An empty snapshot with the given name.
    #[must_use]
    pub fn empty(name: &str) -> Self {
        HistSnapshot {
            name: name.to_string(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            p50: f64::NAN,
            p90: f64::NAN,
            p99: f64::NAN,
            buckets: BTreeMap::new(),
            exact: Some(Vec::new()),
        }
    }

    /// Nearest-rank quantile for `q` in `(0, 1]`.
    ///
    /// Exact (a recorded sample) while the verbatim sample list is
    /// present; otherwise the upper bound of the bucket containing the
    /// rank, clamped to the exact maximum — so the estimate is always
    /// within one relative bucket width (`1/SUBBUCKETS`) of the true
    /// sample quantile.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if let Some(xs) = &self.exact {
            if xs.len() as u64 == self.count {
                return xs[(rank - 1) as usize];
            }
        }
        let mut cum = 0u64;
        for (&idx, &c) in &self.buckets {
            cum += c;
            if cum >= rank {
                let (_, hi) = bucket_bounds(idx as usize);
                // A quantile can never exceed the recorded maximum.
                return if hi > self.max { self.max } else { hi };
            }
        }
        self.max
    }

    /// Recomputes the stored `p50`/`p90`/`p99` fields from the current
    /// bucket/exact state.
    pub fn refresh_quantiles(&mut self) {
        self.p50 = self.quantile(0.50);
        self.p90 = self.quantile(0.90);
        self.p99 = self.quantile(0.99);
    }

    /// Merges two snapshots of the same metric.
    ///
    /// Commutative bit-for-bit: every component combine (integer adds,
    /// pairwise f64 add, total-order min/max, sorted sample union) is
    /// symmetric in its arguments, so `merge(a, b) == merge(b, a)`
    /// exactly — the property `tests/proptest_hist.rs` pins.
    #[must_use]
    pub fn merge(&self, other: &HistSnapshot) -> HistSnapshot {
        let mut buckets = self.buckets.clone();
        for (&idx, &c) in &other.buckets {
            *buckets.entry(idx).or_insert(0) += c;
        }
        let count = self.count + other.count;
        let exact = match (&self.exact, &other.exact) {
            (Some(a), Some(b)) if count as usize <= EXACT_CAP => {
                let mut xs: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
                xs.sort_by(f64::total_cmp);
                Some(xs)
            }
            _ => None,
        };
        let mut merged = HistSnapshot {
            name: self.name.clone(),
            count,
            sum: self.sum + other.sum,
            min: total_min(self.min, other.min),
            max: total_max(self.max, other.max),
            p50: f64::NAN,
            p90: f64::NAN,
            p99: f64::NAN,
            buckets,
            exact,
        };
        merged.refresh_quantiles();
        merged
    }
}

fn total_min(a: f64, b: f64) -> f64 {
    if a.total_cmp(&b) == std::cmp::Ordering::Greater {
        b
    } else {
        a
    }
}

fn total_max(a: f64, b: f64) -> f64 {
    if a.total_cmp(&b) == std::cmp::Ordering::Less {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_the_positive_axis() {
        // Every interior bucket's upper bound is the next bucket's lower
        // bound, and bucket_index is consistent with bucket_bounds.
        for idx in 1..N_BUCKETS - 2 {
            let (_, hi) = bucket_bounds(idx);
            let (lo_next, _) = bucket_bounds(idx + 1);
            assert_eq!(hi, lo_next, "gap between buckets {idx} and {}", idx + 1);
        }
        for &v in &[1e-12, 1e-6, 0.5, 1.0, 1.5, 3.0, 1e6, 4e12] {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(
                lo <= v && v < hi,
                "value {v} outside bucket {idx}: [{lo}, {hi})"
            );
        }
    }

    #[test]
    fn degenerate_values_land_in_sentinel_buckets() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1e-300), 0);
        assert_eq!(bucket_index(f64::INFINITY), N_BUCKETS - 1);
        assert_eq!(bucket_index(1e300), N_BUCKETS - 1);
    }

    #[test]
    fn exact_small_sample_quantiles_are_exact() {
        let h = Histogram::new();
        for v in [5.0, 1.0, 4.0, 2.0, 3.0] {
            h.observe(v);
        }
        let s = h.snapshot("t");
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.sum, 15.0);
        assert_eq!(s.quantile(0.5), 3.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert_eq!(s.quantile(0.2), 1.0);
    }

    #[test]
    fn beyond_cap_quantiles_fall_back_to_buckets() {
        let h = Histogram::new();
        let n = EXACT_CAP * 4;
        for i in 0..n {
            h.observe(1.0 + i as f64); // 1..=2048
        }
        let s = h.snapshot("t");
        assert_eq!(s.count, n as u64);
        assert!(s.exact.is_none());
        let est = s.quantile(0.5);
        let exact = 1.0 + (n / 2 - 1) as f64;
        let rel = (est - exact).abs() / exact;
        assert!(
            rel <= 1.0 / SUBBUCKETS as f64,
            "p50 estimate {est} vs exact {exact}: rel err {rel}"
        );
        assert_eq!(s.quantile(1.0), s.max);
    }

    #[test]
    fn reset_empties_the_histogram() {
        let h = Histogram::new();
        h.observe(1.0);
        h.reset();
        let s = h.snapshot("t");
        assert_eq!(s.count, 0);
        assert!(s.buckets.is_empty());
        assert_eq!(s.exact.as_deref(), Some(&[][..]));
    }
}
