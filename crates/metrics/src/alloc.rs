//! Allocation accounting via a counting global allocator.
//!
//! Generalises the counting-allocator technique from PR 2's
//! `sgs-trace/tests/alloc_noop.rs` into a reusable facility: a binary (or
//! test) installs [`CountingAllocator`] with `#[global_allocator]`, calls
//! [`mark_installed`] in `main`, and every heap allocation is counted
//! into two process-global atomics that run snapshots report as the
//! `alloc_calls` / `alloc_bytes` counters (both 0 when no counting
//! allocator is installed).
//!
//! The counting itself is two relaxed `fetch_add`s per allocation on top
//! of the system allocator — cheap enough for production binaries — and
//! is also what `tests/alloc_disabled.rs` uses to pin the zero-allocation
//! guarantee of the metrics-disabled hot path.

// A global allocator is the one thing that cannot be written without
// `unsafe`; the workspace-wide deny is lifted for this module only.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// A system-allocator wrapper counting allocation calls and bytes.
///
/// Install with:
///
/// ```ignore
/// #[global_allocator]
/// static GLOBAL: sgs_metrics::alloc::CountingAllocator =
///     sgs_metrics::alloc::CountingAllocator;
/// ```
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Declares that a [`CountingAllocator`] is installed as the global
/// allocator, so snapshot alloc counters are meaningful.
pub fn mark_installed() {
    INSTALLED.store(true, Ordering::SeqCst);
}

/// Whether [`mark_installed`] has been called.
#[must_use]
pub fn is_installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Total allocation/reallocation calls counted so far (0 when no
/// counting allocator is installed).
#[must_use]
pub fn allocation_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Total bytes requested by counted allocations (0 when no counting
/// allocator is installed).
#[must_use]
pub fn allocation_bytes() -> u64 {
    ALLOC_BYTES.load(Ordering::Relaxed)
}
