//! Sliding-window per-route latency quantiles (SLO tracking).
//!
//! The log-bucketed [`crate::hist::Histogram`]s aggregate over a whole
//! run; SLOs care about *recent* behaviour. This module keeps, per served
//! route, a fixed-capacity window of the last [`WINDOW_CAPACITY`] request
//! latencies and derives exact (sorted, nearest-rank) p50/p95/p99 over
//! it. The quantiles surface in two places:
//!
//! - the schema-v1 snapshot, as injected gauges
//!   `serve_window_<route>_p50_seconds` / `_p95_` / `_p99_` plus a
//!   `serve_window_<route>_requests` counter (windows that never saw a
//!   request inject nothing, so non-serve binaries' snapshots are
//!   unchanged);
//! - the Prometheus exposition, which renders those gauges/counters like
//!   any other.
//!
//! Same recording rules as the rest of the registry: disabled ⇒ one
//! relaxed atomic load and out; [`crate::reset`] clears the windows.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Number of most-recent samples the per-route window retains.
pub const WINDOW_CAPACITY: usize = 512;

/// Served routes with SLO windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Route {
    /// `POST /solve`.
    Solve,
    /// `POST /resolve`.
    Resolve,
    /// `POST /what_if`.
    WhatIf,
    /// `POST /analyze`.
    Analyze,
}

impl Route {
    /// Number of routes (storage array length).
    pub const COUNT: usize = 4;
    /// Every route in declaration order.
    pub const ALL: [Route; Self::COUNT] =
        [Route::Solve, Route::Resolve, Route::WhatIf, Route::Analyze];

    /// Stable snake_case name used in metric keys.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Route::Solve => "solve",
            Route::Resolve => "resolve",
            Route::WhatIf => "what_if",
            Route::Analyze => "analyze",
        }
    }

    /// Maps an HTTP path to its SLO route, if it has one.
    #[must_use]
    pub fn for_path(path: &str) -> Option<Route> {
        match path {
            "/solve" => Some(Route::Solve),
            "/resolve" => Some(Route::Resolve),
            "/what_if" => Some(Route::WhatIf),
            "/analyze" => Some(Route::Analyze),
            _ => None,
        }
    }
}

static WINDOWS: [Mutex<VecDeque<f64>>; Route::COUNT] =
    [const { Mutex::new(VecDeque::new()) }; Route::COUNT];

/// Sliding-window quantiles for one route.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteQuantiles {
    /// Median latency over the window, seconds.
    pub p50: f64,
    /// 95th-percentile latency over the window, seconds.
    pub p95: f64,
    /// 99th-percentile latency over the window, seconds.
    pub p99: f64,
    /// Samples currently in the window (≤ [`WINDOW_CAPACITY`]).
    pub count: usize,
}

/// Records one request latency into the route's window (no-op while the
/// registry is disabled). The oldest sample is dropped at capacity.
pub fn observe_route(route: Route, seconds: f64) {
    if !crate::enabled() {
        return;
    }
    push_sample(route, seconds);
}

fn push_sample(route: Route, seconds: f64) {
    let mut w = WINDOWS[route as usize].lock().unwrap();
    if w.len() == WINDOW_CAPACITY {
        w.pop_front();
    }
    w.push_back(seconds);
}

/// Nearest-rank percentile of a sorted slice (`p` in `[0, 1]`).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Current window quantiles for `route` (`None` when the window is
/// empty).
#[must_use]
pub fn route_quantiles(route: Route) -> Option<RouteQuantiles> {
    let w = WINDOWS[route as usize].lock().unwrap();
    if w.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = w.iter().copied().collect();
    drop(w);
    sorted.sort_by(f64::total_cmp);
    Some(RouteQuantiles {
        p50: percentile(&sorted, 0.50),
        p95: percentile(&sorted, 0.95),
        p99: percentile(&sorted, 0.99),
        count: sorted.len(),
    })
}

/// Empties every route window (part of [`crate::reset`]).
pub fn reset_windows() {
    for w in &WINDOWS {
        w.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    // The windows are process-global and `crate::reset` clears them, so
    // every test here serialises on the registry's shared lock. The
    // `enabled()` gate itself is covered by the registry tests in
    // `lib.rs`; these bypass it via `push_sample`.
    use super::*;

    #[test]
    fn quantiles_are_exact_over_small_windows() {
        let _g = crate::TEST_LOCK.lock().unwrap();
        reset_windows();
        for i in 1..=100 {
            push_sample(Route::Solve, f64::from(i) / 1000.0);
        }
        let q = route_quantiles(Route::Solve).unwrap();
        assert_eq!(q.count, 100);
        // Nearest-rank over n=100: indices round(99p) = 50 / 94 / 98.
        assert!((q.p50 - 0.051).abs() < 1e-12, "p50 {}", q.p50);
        assert!((q.p95 - 0.095).abs() < 1e-12, "p95 {}", q.p95);
        assert!((q.p99 - 0.099).abs() < 1e-12, "p99 {}", q.p99);
        assert!(q.p50 <= q.p95 && q.p95 <= q.p99);
    }

    #[test]
    fn window_drops_oldest_at_capacity() {
        let _g = crate::TEST_LOCK.lock().unwrap();
        reset_windows();
        for i in 0..(WINDOW_CAPACITY + 10) {
            push_sample(Route::WhatIf, i as f64);
        }
        let q = route_quantiles(Route::WhatIf).unwrap();
        assert_eq!(q.count, WINDOW_CAPACITY);
        // The 10 oldest samples (0..9) are gone: the window minimum is 10,
        // so the median reflects the shifted window.
        assert!((q.p50 - (10.0_f64 + 511.0 / 2.0).round()).abs() <= 1.0);
    }

    #[test]
    fn empty_window_yields_none() {
        let _g = crate::TEST_LOCK.lock().unwrap();
        reset_windows();
        assert!(route_quantiles(Route::Analyze).is_none());
    }

    #[test]
    fn route_path_mapping() {
        assert_eq!(Route::for_path("/solve"), Some(Route::Solve));
        assert_eq!(Route::for_path("/metrics"), None);
        for r in Route::ALL {
            assert!(!r.name().is_empty());
        }
    }
}
