//! Proof of the overhead policy: the metrics hot path — counters,
//! gauges, histogram observations, phase guards, histogram timers —
//! performs **zero** heap allocations, whether the registry is disabled
//! (the default for every solver run without `--metrics`) or enabled.
//!
//! Uses the crate's own `CountingAllocator` as the global allocator, so
//! this test doubles as a check that allocation accounting itself works:
//! a deliberate `Vec` allocation at the end must move the counters.

use sgs_metrics::alloc::{allocation_bytes, allocation_calls, CountingAllocator};
use sgs_metrics::{Counter, Gauge, HistId, Phase};

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn hammer_hot_path(rounds: u64) {
    for i in 0..rounds {
        sgs_metrics::incr(Counter::NlpInnerIterations);
        sgs_metrics::add(Counter::SstaGatesRecomputed, i);
        sgs_metrics::set_gauge(Gauge::NlpLastObjective, i as f64);
        sgs_metrics::observe(HistId::NlpOuterSeconds, 1e-3 + i as f64 * 1e-6);
        let _outer = sgs_metrics::phase(Phase::Solve);
        let _inner = sgs_metrics::phase(Phase::Auglag);
        let _timer = sgs_metrics::time_hist(HistId::SstaFullSeconds);
    }
}

/// Runs `hammer_hot_path(10_000)` and returns the allocation delta
/// observed across the window, retrying up to 10 times.
///
/// The allocation counters are process-global, so the libtest harness
/// thread (blocked waiting for this test) can deposit a stray
/// allocation inside a measured window. A hot path that really
/// allocates dirties *every* window with ~rounds-proportional counts;
/// harness noise is rare and window-independent, so one clean window
/// proves the path alloc-free. The tightest dirty delta is reported on
/// failure.
fn cleanest_window() -> (u64, u64) {
    let mut best = (u64::MAX, u64::MAX);
    for _ in 0..10 {
        let (calls0, bytes0) = (allocation_calls(), allocation_bytes());
        hammer_hot_path(10_000);
        let delta = (allocation_calls() - calls0, allocation_bytes() - bytes0);
        if delta == (0, 0) {
            return delta;
        }
        best = best.min(delta);
    }
    best
}

#[test]
fn hot_path_allocates_zero_bytes() {
    sgs_metrics::alloc::mark_installed();

    // Disabled path (the default): no clock reads, no locks, no allocation.
    sgs_metrics::disable();
    // Warm-up outside the measured window, in case lazy runtime structures
    // (e.g. stdout locks elsewhere in the harness) allocate on first touch.
    hammer_hot_path(10);
    assert_eq!(
        cleanest_window(),
        (0, 0),
        "disabled metrics path performed heap allocations"
    );

    // Enabled path: atomics into static storage only — still alloc-free.
    sgs_metrics::reset();
    sgs_metrics::enable();
    hammer_hot_path(10);
    assert_eq!(
        cleanest_window(),
        (0, 0),
        "enabled metrics path performed heap allocations"
    );
    sgs_metrics::disable();

    // Sanity: the accounting itself is live — a real allocation registers.
    let calls2 = allocation_calls();
    let v = std::hint::black_box(vec![0u8; 4096]);
    assert!(allocation_calls() > calls2, "allocator accounting is dead");
    drop(v);
}
