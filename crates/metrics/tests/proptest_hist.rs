//! Property-based differential oracle for the log-bucketed histogram:
//! the bucket-walk quantile estimate must stay within one bucket width of
//! the exact sorted-sample quantile, and snapshot merging must be
//! commutative bit for bit.

use proptest::prelude::*;
use sgs_metrics::hist::{bucket_bounds, bucket_index, Histogram, EXACT_CAP, SUBBUCKETS};
use sgs_metrics::HistSnapshot;

/// The value domain the instrumented code observes: wall-clock seconds
/// and gate counts, spanning microseconds to hours.
fn sample() -> impl Strategy<Value = f64> {
    (-20.0..12.0f64).prop_map(|e| e.exp2())
}

/// Exact nearest-rank quantile over a sorted copy of `xs`.
fn exact_quantile(xs: &[f64], q: f64) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn snapshot_of(xs: &[f64]) -> HistSnapshot {
    let h = Histogram::new();
    for &x in xs {
        h.observe(x);
    }
    h.snapshot("test")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    // Small samples keep the verbatim list, so quantiles are *exact*
    // sorted-sample quantiles.
    #[test]
    fn small_sample_quantiles_are_exact(
        xs in prop::collection::vec(sample(), 1..64),
    ) {
        let snap = snapshot_of(&xs);
        for q in [0.5, 0.9, 0.99] {
            let est = snap.quantile(q);
            let exact = exact_quantile(&xs, q);
            prop_assert_eq!(
                est.to_bits(), exact.to_bits(),
                "q{} estimate {} vs exact {}", q, est, exact
            );
        }
    }

    // Beyond the exact-sample cap the bucket walk takes over; the
    // estimate must stay within one relative bucket width (1/SUBBUCKETS)
    // of the true sorted-sample quantile, never below it by more than a
    // bucket, and never above the recorded max.
    #[test]
    fn bucketed_quantiles_within_one_bucket_width(
        xs in prop::collection::vec(sample(), (EXACT_CAP + 1)..(EXACT_CAP + 300)),
    ) {
        let snap = snapshot_of(&xs);
        prop_assert!(snap.exact.is_none(), "cap exceeded, exact list must drop");
        let width = 1.0 / SUBBUCKETS as f64;
        for q in [0.5, 0.9, 0.99] {
            let est = snap.quantile(q);
            let exact = exact_quantile(&xs, q);
            // The estimate is the upper bound of the bucket holding the
            // ranked sample (clamped to max), so est >= exact always and
            // est <= exact * (1 + bucket width).
            prop_assert!(est >= exact, "q{q}: est {est} below exact {exact}");
            prop_assert!(
                est <= exact * (1.0 + width) + 1e-300,
                "q{q}: est {est} beyond one bucket width of exact {exact}"
            );
            prop_assert!(est <= snap.max, "q{q}: est {est} beyond max {}", snap.max);
        }
    }

    // The ranked sample really lives inside the half-open bucket the
    // walk stops at: `bucket_bounds(bucket_index(x))` contains `x`.
    #[test]
    fn bucket_bounds_contain_their_samples(x in sample()) {
        let idx = bucket_index(x);
        let (lo, hi) = bucket_bounds(idx);
        prop_assert!(lo <= x && x < hi, "{x} outside [{lo}, {hi}) of bucket {idx}");
    }

    // merge(a, b) == merge(b, a) bit-identically, across the exact-list
    // and bucketed regimes (the union may cross EXACT_CAP).
    #[test]
    fn merge_is_commutative_bitwise(
        a in prop::collection::vec(sample(), 0..400),
        b in prop::collection::vec(sample(), 0..400),
    ) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let ab = sa.merge(&sb);
        let ba = sb.merge(&sa);
        prop_assert_eq!(ab.count, ba.count);
        prop_assert_eq!(ab.sum.to_bits(), ba.sum.to_bits());
        prop_assert_eq!(ab.min.to_bits(), ba.min.to_bits());
        prop_assert_eq!(ab.max.to_bits(), ba.max.to_bits());
        prop_assert_eq!(ab.p50.to_bits(), ba.p50.to_bits());
        prop_assert_eq!(ab.p90.to_bits(), ba.p90.to_bits());
        prop_assert_eq!(ab.p99.to_bits(), ba.p99.to_bits());
        prop_assert_eq!(&ab.buckets, &ba.buckets);
        match (&ab.exact, &ba.exact) {
            (Some(xs), Some(ys)) => {
                prop_assert_eq!(xs.len(), ys.len());
                for (x, y) in xs.iter().zip(ys) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            (None, None) => {}
            _ => prop_assert!(false, "exact-list presence differs between orders"),
        }
    }

    // Merging with an empty snapshot is the identity on every statistic.
    #[test]
    fn merge_with_empty_is_identity(
        xs in prop::collection::vec(sample(), 1..200),
    ) {
        let snap = snapshot_of(&xs);
        let merged = snap.merge(&HistSnapshot::empty("test"));
        prop_assert_eq!(merged.count, snap.count);
        prop_assert_eq!(merged.sum.to_bits(), snap.sum.to_bits());
        prop_assert_eq!(merged.min.to_bits(), snap.min.to_bits());
        prop_assert_eq!(merged.max.to_bits(), snap.max.to_bits());
        prop_assert_eq!(merged.p50.to_bits(), snap.p50.to_bits());
        prop_assert_eq!(&merged.buckets, &snap.buckets);
    }

    // Count, sum, min and max aggregate exactly regardless of bucketing.
    #[test]
    fn summary_stats_are_exact(
        xs in prop::collection::vec(sample(), 1..700),
    ) {
        let snap = snapshot_of(&xs);
        prop_assert_eq!(snap.count, xs.len() as u64);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(snap.min.to_bits(), min.to_bits());
        prop_assert_eq!(snap.max.to_bits(), max.to_bits());
        prop_assert!((snap.sum - xs.iter().sum::<f64>()).abs() <= 1e-9 * snap.sum.abs());
    }
}
