//! Statistical algebra for gate sizing under a statistical delay model.
//!
//! This crate implements the mathematical core of *"Gate Sizing Using a
//! Statistical Delay Model"* (Jacobs & Berkelaar, DATE 2000):
//!
//! * normal-distribution primitives ([`Normal`], [`special`]),
//! * the **analytical stochastic maximum** of two independent normal random
//!   variables — the moment formulas of the paper's Eqs. 10/12/13 (originally
//!   due to Clark, 1961) — together with **exact first and second
//!   derivatives** with respect to the operand means and variances
//!   ([`clark`]),
//! * hyper-dual numbers ([`dual`]) used to cross-validate every hand-derived
//!   derivative to machine precision, and
//! * Monte Carlo moment estimation ([`mc`]) used to validate the analytical
//!   moments themselves.
//!
//! The analytical max is what makes gate sizing under a statistical delay
//! model tractable as a nonlinear program: a large-scale NLP solver needs
//! exact gradients and Hessians of every constraint, and the paper's key
//! enabling step is expressing the mean and standard deviation of
//! `max(A, B)` in closed form so those derivatives exist.
//!
//! # Example
//!
//! ```
//! use sgs_statmath::{Normal, clark};
//!
//! let a = Normal::new(10.0, 2.0); // mean 10, sigma 2
//! let b = Normal::new(11.0, 1.0);
//! let c = clark::max(a, b);
//! assert!(c.mean() >= a.mean().max(b.mean()));
//! assert!(c.sigma() > 0.0);
//! ```

pub mod clark;
pub mod dual;
pub mod interval;
pub mod mc;
pub mod normal;
pub mod special;

pub use clark::{max, max_hess, ClarkHess};
pub use dual::Dual2;
pub use normal::Normal;
