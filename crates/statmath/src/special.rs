//! Special functions: standard-normal density, distribution and quantile.
//!
//! The cumulative distribution is computed without an external `erf`:
//! Marsaglia's Taylor expansion is used in the central region (all terms
//! share a sign, so there is no internal cancellation) and a backward
//! continued fraction is used in the far tails. Absolute accuracy is at the
//! level of machine epsilon everywhere, which is what the Clark-moment
//! formulas and their derivatives require.

/// `1 / sqrt(2 * pi)`.
pub const FRAC_1_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// The standard normal probability density `phi(x) = exp(-x^2/2)/sqrt(2 pi)`.
///
/// ```
/// use sgs_statmath::special::normal_pdf;
/// assert!((normal_pdf(0.0) - 0.3989422804014327).abs() < 1e-15);
/// ```
#[inline]
pub fn normal_pdf(x: f64) -> f64 {
    FRAC_1_SQRT_2PI * (-0.5 * x * x).exp()
}

/// The standard normal cumulative distribution `Phi(x)`.
///
/// Uses Marsaglia's series for `|x| <= 6.5` and a Lentz-style backward
/// continued fraction for the tails, giving full double-precision absolute
/// accuracy and high relative accuracy in the tails.
///
/// ```
/// use sgs_statmath::special::normal_cdf;
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-15);
/// assert!((normal_cdf(1.0) - 0.8413447460685429).abs() < 1e-13);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    // The continued fraction is essentially exact for |x| >= 4 and avoids
    // the cancellation the central series suffers on the negative side.
    if x >= 4.0 {
        return 1.0 - tail_q(x);
    }
    if x <= -4.0 {
        return tail_q(-x);
    }
    // Marsaglia (2004): Phi(x) = 1/2 + phi(x) * (x + x^3/3 + x^5/(3*5) + ...)
    let mut sum = x;
    let mut term = x;
    let x2 = x * x;
    let mut denom = 1.0;
    loop {
        denom += 2.0;
        term *= x2 / denom;
        let prev = sum;
        sum += term;
        if sum == prev {
            break;
        }
    }
    0.5 + normal_pdf(x) * sum
}

/// Upper-tail probability `Q(x) = 1 - Phi(x)` for `x >= 6`, via the
/// continued fraction `Q(x) = phi(x) / (x + 1/(x + 2/(x + 3/(x + ...))))`
/// evaluated backward with 60 levels.
fn tail_q(x: f64) -> f64 {
    debug_assert!(x > 0.0);
    let mut f = x;
    for k in (1..=120u32).rev() {
        f = x + f64::from(k) / f;
    }
    normal_pdf(x) / f
}

/// The standard normal quantile (inverse of [`normal_cdf`]).
///
/// Starts from a logistic-style rough inverse and polishes with Halley
/// iterations on `normal_cdf`, converging to machine precision for
/// `p` in `(0, 1)`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`. Returns `-inf`/`+inf` for `p = 0`/`1`.
///
/// ```
/// use sgs_statmath::special::{normal_cdf, normal_quantile};
/// let x = normal_quantile(0.975);
/// assert!((normal_cdf(x) - 0.975).abs() < 1e-14);
/// ```
pub fn normal_quantile(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    // Rough start: inverse via the tail bound |x| ~ sqrt(-2 ln(min(p,1-p))).
    let q = p.min(1.0 - p);
    let mut x = (-2.0 * q.ln()).sqrt();
    // Refine the magnitude so normal_cdf(-x) ~ q, then fix the sign.
    if x < 0.2 {
        x = 0.0;
    }
    let mut t = if p < 0.5 { -x } else { x };
    for _ in 0..60 {
        let f = normal_cdf(t) - p;
        let d = normal_pdf(t);
        if d <= 0.0 {
            break;
        }
        // Halley step: f'' = -t * phi(t).
        let u = f / d;
        let step = u / (1.0 + 0.5 * t * u).max(0.5);
        t -= step;
        if step.abs() < 1e-15 * (1.0 + t.abs()) {
            break;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed with mpmath at 30 digits.
    const REF: &[(f64, f64)] = &[
        (-8.0, 6.220960574271786e-16),
        (-6.0, 9.865_876_450_376_98e-10),
        (-4.0, 3.167124183311992e-5),
        (-2.0, 0.022750131948179195),
        (-1.0, 0.15865525393145707),
        (-0.5, 0.3085375387259869),
        (0.0, 0.5),
        (0.5, 0.6914624612740131),
        (1.0, 0.8413447460685429),
        (2.0, 0.9772498680518208),
        (3.0, 0.9986501019683699),
        (4.0, 0.9999683287581669),
    ];

    #[test]
    fn cdf_matches_reference() {
        for &(x, want) in REF {
            let got = normal_cdf(x);
            // Relative accuracy: near-exact in the tails (continued
            // fraction), ~1e-12 in the central region where the series sum
            // is added to 0.5.
            let tol = if x.abs() >= 4.0 { 1e-14 } else { 5e-12 };
            assert!(
                (got - want).abs() <= tol * want.max(1e-300),
                "Phi({x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn cdf_symmetry() {
        for i in 0..200 {
            let x = -5.0 + 0.05 * f64::from(i);
            let s = normal_cdf(x) + normal_cdf(-x);
            assert!((s - 1.0).abs() < 1e-14, "symmetry broken at {x}: {s}");
        }
    }

    #[test]
    fn cdf_monotone() {
        let mut prev = normal_cdf(-10.0);
        for i in 1..=400 {
            let x = -10.0 + 0.05 * f64::from(i);
            let v = normal_cdf(x);
            assert!(v >= prev, "non-monotone at {x}");
            prev = v;
        }
    }

    #[test]
    fn pdf_is_derivative_of_cdf() {
        let h = 1e-6;
        for i in 0..100 {
            let x = -4.0 + 0.08 * f64::from(i);
            let num = (normal_cdf(x + h) - normal_cdf(x - h)) / (2.0 * h);
            assert!((num - normal_pdf(x)).abs() < 1e-9, "at {x}");
        }
    }

    #[test]
    fn quantile_roundtrip() {
        for &p in &[
            1e-9,
            1e-6,
            0.001,
            0.01,
            0.1,
            0.5,
            0.841,
            0.99,
            0.9999,
            1.0 - 1e-9,
        ] {
            let x = normal_quantile(p);
            assert!(
                (normal_cdf(x) - p).abs() < 1e-12 * p.max(1e-3),
                "roundtrip failed at p={p}: x={x}, cdf={}",
                normal_cdf(x)
            );
        }
    }

    #[test]
    fn quantile_known_points() {
        assert!((normal_quantile(0.5)).abs() < 1e-12);
        assert!((normal_quantile(0.8413447460685429) - 1.0).abs() < 1e-10);
        assert!((normal_quantile(0.9986501019683699) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn extreme_tails() {
        assert_eq!(normal_cdf(40.0), 1.0);
        assert!(normal_cdf(-40.0) >= 0.0);
        assert!(normal_cdf(-40.0) < 1e-300);
        assert_eq!(normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(normal_quantile(1.0), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn quantile_rejects_out_of_range() {
        let _ = normal_quantile(1.5);
    }
}
