//! Hyper-dual numbers: exact first and second derivatives by operator
//! overloading.
//!
//! [`Dual2<N>`] carries a value, an `N`-vector gradient and an `N x N`
//! Hessian through arbitrary smooth arithmetic. Every operation applies the
//! chain rule exactly (no truncation error), so evaluating a function on
//! `Dual2` seeds yields its analytic gradient and Hessian to machine
//! precision. The crate uses it to cross-validate the hand-derived
//! Clark-moment derivatives in [`crate::clark`]; downstream crates use it to
//! validate constraint Jacobians and Lagrangian Hessians.
//!
//! ```
//! use sgs_statmath::Dual2;
//! // f(x, y) = x^2 * y at (3, 5): df/dx = 30, df/dy = 9, d2f/dx dy = 6.
//! let x = Dual2::<2>::var(3.0, 0);
//! let y = Dual2::<2>::var(5.0, 1);
//! let f = x * x * y;
//! assert!((f.val - 45.0).abs() < 1e-12);
//! assert!((f.grad[0] - 30.0).abs() < 1e-12);
//! assert!((f.grad[1] - 9.0).abs() < 1e-12);
//! assert!((f.hess[0][1] - 6.0).abs() < 1e-12);
//! ```

use crate::special::{normal_cdf, normal_pdf};
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A scalar abstraction over `f64` and [`Dual2`], letting one source of
/// truth for a formula serve both plain evaluation and exact
/// differentiation.
pub trait Real:
    Copy
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
{
    /// Lifts a constant into the scalar type.
    fn constant(c: f64) -> Self;
    /// The underlying value.
    fn value(self) -> f64;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Standard normal density.
    fn norm_pdf(self) -> Self;
    /// Standard normal distribution function.
    fn norm_cdf(self) -> Self;
}

impl Real for f64 {
    #[inline]
    fn constant(c: f64) -> Self {
        c
    }
    #[inline]
    fn value(self) -> f64 {
        self
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn exp(self) -> Self {
        f64::exp(self)
    }
    #[inline]
    fn norm_pdf(self) -> Self {
        normal_pdf(self)
    }
    #[inline]
    fn norm_cdf(self) -> Self {
        normal_cdf(self)
    }
}

/// Second-order dual number over `N` independent variables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dual2<const N: usize> {
    /// Function value.
    pub val: f64,
    /// Gradient with respect to the `N` seeded variables.
    pub grad: [f64; N],
    /// Hessian with respect to the `N` seeded variables (kept symmetric).
    pub hess: [[f64; N]; N],
}

impl<const N: usize> Dual2<N> {
    /// A constant (zero derivatives).
    pub fn c(val: f64) -> Self {
        Self {
            val,
            grad: [0.0; N],
            hess: [[0.0; N]; N],
        }
    }

    /// The `i`-th independent variable with the given value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= N`.
    pub fn var(val: f64, i: usize) -> Self {
        assert!(i < N, "variable index {i} out of range for Dual2<{N}>");
        let mut grad = [0.0; N];
        grad[i] = 1.0;
        Self {
            val,
            grad,
            hess: [[0.0; N]; N],
        }
    }

    /// Applies a scalar function given its value and first two derivatives
    /// at `self.val` (exact chain rule).
    pub fn lift(self, f: f64, df: f64, d2f: f64) -> Self {
        let mut out = Self::c(f);
        for i in 0..N {
            out.grad[i] = df * self.grad[i];
        }
        for i in 0..N {
            for j in 0..N {
                out.hess[i][j] = df * self.hess[i][j] + d2f * self.grad[i] * self.grad[j];
            }
        }
        out
    }
}

impl<const N: usize> Add for Dual2<N> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        let mut out = self;
        out.val += rhs.val;
        for i in 0..N {
            out.grad[i] += rhs.grad[i];
            for j in 0..N {
                out.hess[i][j] += rhs.hess[i][j];
            }
        }
        out
    }
}

impl<const N: usize> Sub for Dual2<N> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        self + (-rhs)
    }
}

impl<const N: usize> Neg for Dual2<N> {
    type Output = Self;
    fn neg(self) -> Self {
        let mut out = self;
        out.val = -out.val;
        for i in 0..N {
            out.grad[i] = -out.grad[i];
            for j in 0..N {
                out.hess[i][j] = -out.hess[i][j];
            }
        }
        out
    }
}

impl<const N: usize> Mul for Dual2<N> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        let mut out = Self::c(self.val * rhs.val);
        for i in 0..N {
            out.grad[i] = self.grad[i] * rhs.val + self.val * rhs.grad[i];
        }
        for i in 0..N {
            for j in 0..N {
                out.hess[i][j] = self.hess[i][j] * rhs.val
                    + self.val * rhs.hess[i][j]
                    + self.grad[i] * rhs.grad[j]
                    + self.grad[j] * rhs.grad[i];
            }
        }
        out
    }
}

impl<const N: usize> Div for Dual2<N> {
    type Output = Self;
    fn div(self, rhs: Self) -> Self {
        // self / rhs = self * rhs^{-1}; lift x -> 1/x on rhs.
        let v = rhs.val;
        let inv = rhs.lift(1.0 / v, -1.0 / (v * v), 2.0 / (v * v * v));
        self * inv
    }
}

impl<const N: usize> Real for Dual2<N> {
    fn constant(c: f64) -> Self {
        Self::c(c)
    }
    fn value(self) -> f64 {
        self.val
    }
    fn sqrt(self) -> Self {
        let s = self.val.sqrt();
        self.lift(s, 0.5 / s, -0.25 / (s * s * s))
    }
    fn exp(self) -> Self {
        let e = self.val.exp();
        self.lift(e, e, e)
    }
    fn norm_pdf(self) -> Self {
        let x = self.val;
        let p = normal_pdf(x);
        // phi'(x) = -x phi(x), phi''(x) = (x^2 - 1) phi(x).
        self.lift(p, -x * p, (x * x - 1.0) * p)
    }
    fn norm_cdf(self) -> Self {
        let x = self.val;
        let p = normal_pdf(x);
        // Phi'(x) = phi(x), Phi''(x) = -x phi(x).
        self.lift(normal_cdf(x), p, -x * p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn polynomial_derivatives() {
        // f(x,y) = x^3 + 2 x y + y^2 at (2, -1).
        let x = Dual2::<2>::var(2.0, 0);
        let y = Dual2::<2>::var(-1.0, 1);
        let two = Dual2::<2>::c(2.0);
        let f = x * x * x + two * x * y + y * y;
        assert!(close(f.val, 8.0 - 4.0 + 1.0, 1e-14));
        assert!(close(f.grad[0], 3.0 * 4.0 + -2.0, 1e-14)); // 10
        assert!(close(f.grad[1], 2.0 * 2.0 + -2.0, 1e-14)); // 2
        assert!(close(f.hess[0][0], 12.0, 1e-14));
        assert!(close(f.hess[0][1], 2.0, 1e-14));
        assert!(close(f.hess[1][1], 2.0, 1e-14));
    }

    #[test]
    fn division_and_sqrt() {
        // f(x) = sqrt(x) / (1 + x) at x = 4: value 0.4.
        let x = Dual2::<1>::var(4.0, 0);
        let one = Dual2::<1>::c(1.0);
        let f = x.sqrt() / (one + x);
        assert!(close(f.val, 0.4, 1e-14));
        // f'(x) = ( (1+x)/(2 sqrt x) - sqrt x ) / (1+x)^2 = (1 - x)/(2 sqrt x (1+x)^2)
        let want = (1.0 - 4.0) / (2.0 * 2.0 * 25.0);
        assert!(close(f.grad[0], want, 1e-13));
        // Check Hessian against central differences of the analytic first
        // derivative.
        let g = |x: f64| (1.0 - x) / (2.0 * x.sqrt() * (1.0 + x).powi(2));
        let h = 1e-6;
        let num = (g(4.0 + h) - g(4.0 - h)) / (2.0 * h);
        assert!(close(f.hess[0][0], num, 1e-7));
    }

    #[test]
    fn cdf_chain_rule() {
        // f(x) = Phi(x^2) at x = 0.7.
        let x = Dual2::<1>::var(0.7, 0);
        let f = (x * x).norm_cdf();
        let x0: f64 = 0.7;
        let u = x0 * x0;
        assert!(close(f.val, normal_cdf(u), 1e-14));
        assert!(close(f.grad[0], normal_pdf(u) * 2.0 * x0, 1e-13));
        let want_h = -u * normal_pdf(u) * (2.0 * x0) * (2.0 * x0) + normal_pdf(u) * 2.0;
        assert!(close(f.hess[0][0], want_h, 1e-12));
    }

    #[test]
    fn hessian_symmetric_under_mixed_ops() {
        let a = Dual2::<3>::var(1.3, 0);
        let b = Dual2::<3>::var(-0.4, 1);
        let c = Dual2::<3>::var(2.2, 2);
        let f = (a * b + c / a).exp().norm_cdf() * b.sqrt().norm_pdf();
        // b is negative so sqrt gives NaN; use abs path instead: rebuild.
        let _ = f;
        let f = (a * b + c / a).exp().norm_cdf() * c.sqrt().norm_pdf();
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    close(f.hess[i][j], f.hess[j][i], 1e-12),
                    "asymmetric at {i},{j}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn var_index_checked() {
        let _ = Dual2::<2>::var(0.0, 5);
    }
}
