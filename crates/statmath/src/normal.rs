//! The [`Normal`] random-variable type used for arrival times and delays.

use crate::special::{normal_cdf, normal_quantile};
use std::fmt;
use std::ops::Add;

/// A normally distributed random variable, stored as `(mean, variance)`.
///
/// The gate sizing formulation carries *variances* (squared standard
/// deviations) rather than standard deviations — exactly as the paper does —
/// because it keeps the `add` operation linear. The constructor takes a
/// standard deviation for ergonomics; use [`Normal::from_mean_var`] when you
/// already have a variance.
///
/// ```
/// use sgs_statmath::Normal;
/// let t = Normal::new(5.0, 0.5);
/// assert_eq!(t.mean(), 5.0);
/// assert!((t.var() - 0.25).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    var: f64,
}

impl Normal {
    /// Creates a variable with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either argument is not finite.
    pub fn new(mean: f64, sigma: f64) -> Self {
        assert!(mean.is_finite(), "mean must be finite");
        assert!(sigma.is_finite() && sigma >= 0.0, "sigma must be >= 0");
        Self {
            mean,
            var: sigma * sigma,
        }
    }

    /// Creates a variable from a mean and a *variance*.
    ///
    /// # Panics
    ///
    /// Panics if `var` is negative or either argument is not finite.
    pub fn from_mean_var(mean: f64, var: f64) -> Self {
        assert!(mean.is_finite(), "mean must be finite");
        assert!(var.is_finite() && var >= 0.0, "variance must be >= 0");
        Self { mean, var }
    }

    /// A deterministic (zero-variance) value.
    pub fn certain(value: f64) -> Self {
        Self::from_mean_var(value, 0.0)
    }

    /// The mean.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The variance.
    #[inline]
    pub fn var(&self) -> f64 {
        self.var
    }

    /// The standard deviation.
    #[inline]
    pub fn sigma(&self) -> f64 {
        self.var.sqrt()
    }

    /// `mean + k * sigma` — the paper's robust delay metric. `k = 0`
    /// covers 50% of circuits, `k = 1` 84.1%, `k = 3` 99.8%.
    #[inline]
    pub fn mean_plus_k_sigma(&self, k: f64) -> f64 {
        self.mean + k * self.sigma()
    }

    /// `P(X <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.var == 0.0 {
            return if x >= self.mean { 1.0 } else { 0.0 };
        }
        normal_cdf((x - self.mean) / self.sigma())
    }

    /// The `p`-quantile.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        self.mean + self.sigma() * normal_quantile(p)
    }
}

impl Default for Normal {
    fn default() -> Self {
        Self::certain(0.0)
    }
}

impl Add for Normal {
    type Output = Normal;

    /// Sum of independent normals: means and variances add (paper Eq. 4).
    fn add(self, rhs: Normal) -> Normal {
        Normal {
            mean: self.mean + rhs.mean,
            var: self.var + rhs.var,
        }
    }
}

impl fmt::Display for Normal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N(mu={:.6}, sigma={:.6})", self.mean, self.sigma())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_paper_eq4() {
        let a = Normal::new(3.0, 1.0);
        let b = Normal::new(4.0, 2.0);
        let c = a + b;
        assert_eq!(c.mean(), 7.0);
        assert!((c.var() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn certain_has_zero_sigma() {
        let x = Normal::certain(2.5);
        assert_eq!(x.sigma(), 0.0);
        assert_eq!(x.cdf(2.5), 1.0);
        assert_eq!(x.cdf(2.4999), 0.0);
    }

    #[test]
    fn mean_plus_k_sigma() {
        let x = Normal::new(10.0, 2.0);
        assert!((x.mean_plus_k_sigma(3.0) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_cdf_roundtrip() {
        let x = Normal::new(-3.0, 0.7);
        for &p in &[0.01, 0.25, 0.5, 0.75, 0.999] {
            let q = x.quantile(p);
            assert!((x.cdf(q) - p).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "sigma must be >= 0")]
    fn rejects_negative_sigma() {
        let _ = Normal::new(0.0, -1.0);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", Normal::default()).is_empty());
    }
}
