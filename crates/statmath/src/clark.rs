//! The analytical stochastic maximum of two independent normals.
//!
//! Implements the paper's Eqs. 10, 12 and 13 (the moment formulas first
//! derived by Clark, 1961, and re-derived in the paper's Appendix A) and —
//! the paper's key enabling contribution — their **exact first and second
//! derivatives** with respect to the four inputs `(mu_a, var_a, mu_b,
//! var_b)`. These derivatives are what allow gate sizing under a statistical
//! delay model to be posed as a smooth nonlinear program and solved by a
//! LANCELOT-class solver.
//!
//! With `theta^2 = var_a + var_b + eps^2` and `alpha = (mu_a - mu_b) / theta`:
//!
//! ```text
//! mu_c    = mu_a Phi(alpha) + mu_b Phi(-alpha) + theta phi(alpha)        (Eq. 10)
//! E[C^2]  = (var_a + mu_a^2) Phi(alpha) + (var_b + mu_b^2) Phi(-alpha)
//!           + (mu_a + mu_b) theta phi(alpha)                             (Eq. 12)
//! var_c   = E[C^2] - mu_c^2                                              (Eq. 13)
//! ```
//!
//! The smoothing floor `eps` (default [`DEFAULT_EPS`]) regularises the
//! degenerate case `var_a + var_b -> 0` (e.g. the max over deterministic
//! primary-input arrivals), where the exact formulas have a kink. The paper
//! does not discuss this case; any tiny floor reproduces its results because
//! every gate delay carries `sigma = 0.25 mu > 0`.

use crate::dual::{Dual2, Real};
use crate::normal::Normal;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default variance-smoothing floor added inside `theta^2`.
pub const DEFAULT_EPS: f64 = 1e-9;

/// Process-wide count of variance clamps that actually fired (see
/// [`var_clamp_count`]).
static VAR_CLAMP_COUNT: AtomicU64 = AtomicU64::new(0);

/// How many times a Clark evaluation produced a (slightly) negative
/// `var_C = E[C²] − μ_C²` and clamped it to zero, process-wide since
/// start.
///
/// The clamp is numerically benign — the true variance is non-negative
/// and the negative excursion is catastrophic-cancellation noise when one
/// operand dominates — but it silently discards information, so every
/// firing is counted. The sizing driver samples this counter around a
/// solve and reports the delta (`clark_var_clamped` trace counter), which
/// corroborates the static analyzer's interval findings with runtime data.
///
/// Each firing is also pushed into the metrics registry
/// (`clark_var_clamps`) at the clamp site itself, so the registry total
/// stays exact even when several solves run concurrently — per-solve
/// deltas of this process-global counter would overlap and double-count.
pub fn var_clamp_count() -> u64 {
    VAR_CLAMP_COUNT.load(Ordering::Relaxed)
}

/// `var.max(0.0)` that counts actual clamps. Matches `f64::max` exactly,
/// including the NaN-to-floor mapping (which is not counted: it is a
/// divergence, not a clamp).
fn clamp_var(var: f64) -> f64 {
    if var >= 0.0 {
        var
    } else {
        if var < 0.0 {
            VAR_CLAMP_COUNT.fetch_add(1, Ordering::Relaxed);
            sgs_metrics::incr(sgs_metrics::Counter::ClarkVarClamps);
        }
        0.0
    }
}

/// Index of `mu_a` in gradient/Hessian arrays.
pub const I_MU_A: usize = 0;
/// Index of `var_a` in gradient/Hessian arrays.
pub const I_VAR_A: usize = 1;
/// Index of `mu_b` in gradient/Hessian arrays.
pub const I_MU_B: usize = 2;
/// Index of `var_b` in gradient/Hessian arrays.
pub const I_VAR_B: usize = 3;

/// Clark moments written against the generic scalar [`Real`], so the same
/// formula text yields plain values (`f64`) and machine-precision derivative
/// cross-checks ([`Dual2`]). Returns `(mu_c, var_c)`.
pub fn moments_generic<T: Real>(mu_a: T, var_a: T, mu_b: T, var_b: T, eps: f64) -> (T, T) {
    let theta2 = var_a + var_b + T::constant(eps * eps);
    let theta = theta2.sqrt();
    let alpha = (mu_a - mu_b) / theta;
    let phi = alpha.norm_pdf();
    let cdf_p = alpha.norm_cdf();
    let cdf_m = (-alpha).norm_cdf();
    let mu_c = mu_a * cdf_p + mu_b * cdf_m + theta * phi;
    let e2 =
        (var_a + mu_a * mu_a) * cdf_p + (var_b + mu_b * mu_b) * cdf_m + (mu_a + mu_b) * theta * phi;
    (mu_c, e2 - mu_c * mu_c)
}

/// The stochastic maximum `C = max(A, B)` with the default smoothing floor.
///
/// ```
/// use sgs_statmath::{clark, Normal};
/// let c = clark::max(Normal::new(1.0, 0.5), Normal::new(1.0, 0.5));
/// // Equal operands: the max has a strictly larger mean and smaller sigma.
/// assert!(c.mean() > 1.0);
/// assert!(c.sigma() < 0.5);
/// ```
pub fn max(a: Normal, b: Normal) -> Normal {
    max_eps(a, b, DEFAULT_EPS)
}

/// [`max`] with an explicit smoothing floor.
pub fn max_eps(a: Normal, b: Normal, eps: f64) -> Normal {
    let (mu, var) = moments_generic(a.mean(), a.var(), b.mean(), b.var(), eps);
    // Tiny negative variance can appear from rounding when one operand
    // dominates; clamp to zero (counted, see `var_clamp_count`).
    Normal::from_mean_var(mu, clamp_var(var))
}

/// Left fold of [`max`] over any number of operands, exactly as the paper
/// applies the two-operand max repeatedly over a gate's fan-ins (Eq. 18b).
///
/// Returns `None` for an empty iterator.
pub fn max_n<I: IntoIterator<Item = Normal>>(operands: I) -> Option<Normal> {
    let mut it = operands.into_iter();
    let first = it.next()?;
    Some(it.fold(first, max))
}

/// The stochastic minimum `min(A, B) = -max(-A, -B)` — the dual operator
/// needed for earliest-arrival (hold-style) analysis.
///
/// ```
/// use sgs_statmath::{clark, Normal};
/// let c = clark::min(Normal::new(1.0, 0.5), Normal::new(1.0, 0.5));
/// // Equal operands: the min has a strictly smaller mean.
/// assert!(c.mean() < 1.0);
/// ```
pub fn min(a: Normal, b: Normal) -> Normal {
    let neg = |n: Normal| Normal::from_mean_var(-n.mean(), n.var());
    let m = max(neg(a), neg(b));
    Normal::from_mean_var(-m.mean(), m.var())
}

/// Left fold of [`min`] over any number of operands; `None` when empty.
pub fn min_n<I: IntoIterator<Item = Normal>>(operands: I) -> Option<Normal> {
    let mut it = operands.into_iter();
    let first = it.next()?;
    Some(it.fold(first, min))
}

/// First derivatives of the Clark moments. Layout: `[mu_a, var_a, mu_b,
/// var_b]` (see [`I_MU_A`] etc.).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClarkGrad {
    /// `mu_c`.
    pub mu: f64,
    /// `var_c`.
    pub var: f64,
    /// Gradient of `mu_c`.
    pub dmu: [f64; 4],
    /// Gradient of `var_c`.
    pub dvar: [f64; 4],
}

/// First and second derivatives of the Clark moments. Layout as in
/// [`ClarkGrad`]; Hessians are symmetric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClarkHess {
    /// `mu_c`.
    pub mu: f64,
    /// `var_c`.
    pub var: f64,
    /// Gradient of `mu_c`.
    pub dmu: [f64; 4],
    /// Gradient of `var_c`.
    pub dvar: [f64; 4],
    /// Hessian of `mu_c`.
    pub hmu: [[f64; 4]; 4],
    /// Hessian of `var_c`.
    pub hvar: [[f64; 4]; 4],
}

/// Shared intermediates of the closed-form derivative expressions.
struct Frame {
    theta: f64,
    alpha: f64,
    phi: f64,
    cdf_p: f64,
    cdf_m: f64,
    mu_c: f64,
    e2: f64,
}

fn frame(mu_a: f64, var_a: f64, mu_b: f64, var_b: f64, eps: f64) -> Frame {
    let theta = (var_a + var_b + eps * eps).sqrt();
    let alpha = (mu_a - mu_b) / theta;
    let phi = crate::special::normal_pdf(alpha);
    let cdf_p = crate::special::normal_cdf(alpha);
    let cdf_m = 1.0 - cdf_p;
    let mu_c = mu_a * cdf_p + mu_b * cdf_m + theta * phi;
    let e2 =
        (var_a + mu_a * mu_a) * cdf_p + (var_b + mu_b * mu_b) * cdf_m + (mu_a + mu_b) * theta * phi;
    Frame {
        theta,
        alpha,
        phi,
        cdf_p,
        cdf_m,
        mu_c,
        e2,
    }
}

/// Clark moments plus exact gradient, in closed form.
///
/// Cheaper than [`max_hess`]; used on hot paths (adjoint/reduced-space
/// gradients) where second derivatives are not needed.
pub fn max_grad(mu_a: f64, var_a: f64, mu_b: f64, var_b: f64, eps: f64) -> ClarkGrad {
    let f = frame(mu_a, var_a, mu_b, var_b, eps);
    let Frame {
        theta,
        alpha,
        phi,
        cdf_p,
        cdf_m,
        mu_c,
        e2,
    } = f;
    let w = var_a - var_b;
    let s = mu_a + mu_b;

    // d mu_c / d x.
    let dmu = [cdf_p, phi / (2.0 * theta), cdf_m, phi / (2.0 * theta)];

    // d E[C^2] / d x.
    let k_a = theta + w / theta;
    let k_b = theta - w / theta;
    let m = s / (2.0 * theta) - w * alpha / (2.0 * theta * theta);
    let de2 = [
        2.0 * mu_a * cdf_p + phi * k_a,
        cdf_p + phi * m,
        2.0 * mu_b * cdf_m + phi * k_b,
        cdf_m + phi * m,
    ];

    // var_c = E[C^2] - mu_c^2.
    let mut dvar = [0.0; 4];
    for i in 0..4 {
        dvar[i] = de2[i] - 2.0 * mu_c * dmu[i];
    }
    ClarkGrad {
        mu: mu_c,
        var: clamp_var(e2 - mu_c * mu_c),
        dmu,
        dvar,
    }
}

/// Clark moments plus exact gradient and Hessian, in closed form.
///
/// This is the workhorse used by the gate-sizing NLP assembly: both the
/// `max`-equality constraints and the Lagrangian Hessian are built from it.
/// Every entry is validated in tests against hyper-dual evaluation of
/// [`moments_generic`] and against finite differences.
pub fn max_hess(mu_a: f64, var_a: f64, mu_b: f64, var_b: f64, eps: f64) -> ClarkHess {
    let f = frame(mu_a, var_a, mu_b, var_b, eps);
    let Frame {
        theta,
        alpha,
        phi,
        cdf_p,
        cdf_m,
        mu_c,
        e2,
    } = f;
    let w = var_a - var_b;
    let s = mu_a + mu_b;
    let d = mu_a - mu_b;
    let t2 = theta * theta;
    let t3 = t2 * theta;
    let t5 = t3 * t2;

    let dmu = [cdf_p, phi / (2.0 * theta), cdf_m, phi / (2.0 * theta)];
    let k_a = theta + w / theta;
    let k_b = theta - w / theta;
    let m = s / (2.0 * theta) - w * d / (2.0 * t3);
    let de2 = [
        2.0 * mu_a * cdf_p + phi * k_a,
        cdf_p + phi * m,
        2.0 * mu_b * cdf_m + phi * k_b,
        cdf_m + phi * m,
    ];

    // Writes a symmetric pair of Hessian entries.
    fn set(h: &mut [[f64; 4]; 4], i: usize, j: usize, v: f64) {
        h[i][j] = v;
        h[j][i] = v;
    }

    // ---- Hessian of mu_c ------------------------------------------------
    let mut hmu = [[0.0; 4]; 4];
    let pot = phi / theta; // phi / theta
    let apot2 = alpha * phi / (2.0 * t2); // alpha phi / (2 theta^2)
    let vv = phi * (alpha * alpha - 1.0) / (4.0 * t3);
    set(&mut hmu, I_MU_A, I_MU_A, pot);
    set(&mut hmu, I_MU_A, I_MU_B, -pot);
    set(&mut hmu, I_MU_B, I_MU_B, pot);
    set(&mut hmu, I_MU_A, I_VAR_A, -apot2);
    set(&mut hmu, I_MU_A, I_VAR_B, -apot2);
    set(&mut hmu, I_MU_B, I_VAR_A, apot2);
    set(&mut hmu, I_MU_B, I_VAR_B, apot2);
    set(&mut hmu, I_VAR_A, I_VAR_A, vv);
    set(&mut hmu, I_VAR_A, I_VAR_B, vv);
    set(&mut hmu, I_VAR_B, I_VAR_B, vv);

    // ---- Hessian of E[C^2] ----------------------------------------------
    let mut he2 = [[0.0; 4]; 4];
    // Derivatives of K_a, K_b, M with respect to the variances.
    let dka_dva = 3.0 / (2.0 * theta) - w / (2.0 * t3);
    let dka_dvb = -1.0 / (2.0 * theta) - w / (2.0 * t3);
    let dkb_dva = -1.0 / (2.0 * theta) + w / (2.0 * t3);
    let dkb_dvb = 3.0 / (2.0 * theta) + w / (2.0 * t3);
    let dm_dva = -s / (4.0 * t3) - d / (2.0 * t3) + 3.0 * w * d / (4.0 * t5);
    let dm_dvb = -s / (4.0 * t3) + d / (2.0 * t3) + 3.0 * w * d / (4.0 * t5);
    let a2p2t2 = alpha * alpha * phi / (2.0 * t2);

    set(
        &mut he2,
        I_MU_A,
        I_MU_A,
        2.0 * cdf_p + 2.0 * mu_a * pot - alpha * phi * k_a / theta,
    );
    set(
        &mut he2,
        I_MU_A,
        I_MU_B,
        -2.0 * mu_a * pot + alpha * phi * k_a / theta,
    );
    set(
        &mut he2,
        I_MU_B,
        I_MU_B,
        2.0 * cdf_m + 2.0 * mu_b * pot + alpha * phi * k_b / theta,
    );
    set(
        &mut he2,
        I_MU_A,
        I_VAR_A,
        -mu_a * alpha * phi / t2 + a2p2t2 * k_a + phi * dka_dva,
    );
    set(
        &mut he2,
        I_MU_A,
        I_VAR_B,
        -mu_a * alpha * phi / t2 + a2p2t2 * k_a + phi * dka_dvb,
    );
    set(
        &mut he2,
        I_MU_B,
        I_VAR_A,
        mu_b * alpha * phi / t2 + a2p2t2 * k_b + phi * dkb_dva,
    );
    set(
        &mut he2,
        I_MU_B,
        I_VAR_B,
        mu_b * alpha * phi / t2 + a2p2t2 * k_b + phi * dkb_dvb,
    );
    // From gv = dE2/dva = Phi(alpha) + phi M:
    //   d/dva Phi(alpha) = -alpha phi / (2 theta^2) = -apot2, and
    //   d/dvb Phi(-alpha) = +apot2 for the gw = dE2/dvb row.
    set(
        &mut he2,
        I_VAR_A,
        I_VAR_A,
        -apot2 + a2p2t2 * m + phi * dm_dva,
    );
    set(
        &mut he2,
        I_VAR_A,
        I_VAR_B,
        -apot2 + a2p2t2 * m + phi * dm_dvb,
    );
    set(
        &mut he2,
        I_VAR_B,
        I_VAR_B,
        apot2 + a2p2t2 * m + phi * dm_dvb,
    );

    // ---- Chain to var_c = E2 - mu_c^2 -------------------------------------
    let mut dvar = [0.0; 4];
    for i in 0..4 {
        dvar[i] = de2[i] - 2.0 * mu_c * dmu[i];
    }
    let mut hvar = [[0.0; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            hvar[i][j] = he2[i][j] - 2.0 * (dmu[i] * dmu[j] + mu_c * hmu[i][j]);
        }
    }

    ClarkHess {
        mu: mu_c,
        var: clamp_var(e2 - mu_c * mu_c),
        dmu,
        dvar,
        hmu,
        hvar,
    }
}

/// Evaluates moments, gradient and Hessian through hyper-dual numbers.
///
/// This is the independent "second implementation" used to validate
/// [`max_hess`]; it is exact but several times slower.
pub fn max_hess_dual(mu_a: f64, var_a: f64, mu_b: f64, var_b: f64, eps: f64) -> ClarkHess {
    let a = Dual2::<4>::var(mu_a, I_MU_A);
    let va = Dual2::<4>::var(var_a, I_VAR_A);
    let b = Dual2::<4>::var(mu_b, I_MU_B);
    let vb = Dual2::<4>::var(var_b, I_VAR_B);
    let (mu, var) = moments_generic(a, va, b, vb, eps);
    ClarkHess {
        mu: mu.val,
        var: clamp_var(var.val),
        dmu: mu.grad,
        dvar: var.grad,
        hmu: mu.hess,
        hvar: var.hess,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CASES: &[[f64; 4]] = &[
        [0.0, 1.0, 0.0, 1.0],
        [1.0, 1.0, 0.0, 1.0],
        [5.0, 2.0, 4.5, 0.5],
        [-3.0, 0.1, -2.9, 0.4],
        [10.0, 4.0, 2.0, 0.01],
        [2.0, 0.01, 10.0, 4.0],
        [7.4, 3.4225, 7.4, 3.4225], // tree-circuit-like values
        [100.0, 25.0, 99.0, 36.0],
        [0.3, 1e-4, 0.30001, 1e-4],
        [-1.0, 9.0, 4.0, 1e-6],
    ];

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn matches_dual_everywhere() {
        for &[ma, va, mb, vb] in CASES {
            let h = max_hess(ma, va, mb, vb, DEFAULT_EPS);
            let d = max_hess_dual(ma, va, mb, vb, DEFAULT_EPS);
            assert!(
                close(h.mu, d.mu, 1e-12),
                "mu mismatch at {ma},{va},{mb},{vb}"
            );
            assert!(
                close(h.var, d.var, 1e-10),
                "var mismatch at {ma},{va},{mb},{vb}"
            );
            for i in 0..4 {
                assert!(
                    close(h.dmu[i], d.dmu[i], 1e-10),
                    "dmu[{i}] {} vs {} at {ma},{va},{mb},{vb}",
                    h.dmu[i],
                    d.dmu[i]
                );
                assert!(
                    close(h.dvar[i], d.dvar[i], 1e-9),
                    "dvar[{i}] {} vs {} at {ma},{va},{mb},{vb}",
                    h.dvar[i],
                    d.dvar[i]
                );
                for j in 0..4 {
                    assert!(
                        close(h.hmu[i][j], d.hmu[i][j], 1e-8),
                        "hmu[{i}][{j}] {} vs {} at {ma},{va},{mb},{vb}",
                        h.hmu[i][j],
                        d.hmu[i][j]
                    );
                    assert!(
                        close(h.hvar[i][j], d.hvar[i][j], 1e-7),
                        "hvar[{i}][{j}] {} vs {} at {ma},{va},{mb},{vb}",
                        h.hvar[i][j],
                        d.hvar[i][j]
                    );
                }
            }
        }
    }

    #[test]
    fn grad_matches_hess_paths() {
        for &[ma, va, mb, vb] in CASES {
            let g = max_grad(ma, va, mb, vb, DEFAULT_EPS);
            let h = max_hess(ma, va, mb, vb, DEFAULT_EPS);
            assert_eq!(g.mu, h.mu);
            assert_eq!(g.var, h.var);
            assert_eq!(g.dmu, h.dmu);
            assert_eq!(g.dvar, h.dvar);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let eps = DEFAULT_EPS;
        for &[ma, va, mb, vb] in CASES {
            let g = max_grad(ma, va, mb, vb, eps);
            let h = 1e-6;
            let num = |i: usize| -> (f64, f64) {
                let mut p = [ma, va, mb, vb];
                let mut m = [ma, va, mb, vb];
                let step = h * (1.0 + p[i].abs());
                p[i] += step;
                m[i] -= step;
                let fp = moments_generic(p[0], p[1], p[2], p[3], eps);
                let fm = moments_generic(m[0], m[1], m[2], m[3], eps);
                ((fp.0 - fm.0) / (2.0 * step), (fp.1 - fm.1) / (2.0 * step))
            };
            for i in 0..4 {
                let (dmu_n, dvar_n) = num(i);
                assert!(close(g.dmu[i], dmu_n, 1e-5), "dmu[{i}] fd mismatch");
                assert!(close(g.dvar[i], dvar_n, 1e-4), "dvar[{i}] fd mismatch");
            }
        }
    }

    #[test]
    fn hessians_symmetric() {
        for &[ma, va, mb, vb] in CASES {
            let h = max_hess(ma, va, mb, vb, DEFAULT_EPS);
            for i in 0..4 {
                for j in 0..4 {
                    assert_eq!(h.hmu[i][j], h.hmu[j][i]);
                    assert_eq!(h.hvar[i][j], h.hvar[j][i]);
                }
            }
        }
    }

    #[test]
    fn commutative() {
        for &[ma, va, mb, vb] in CASES {
            let ab = max(Normal::from_mean_var(ma, va), Normal::from_mean_var(mb, vb));
            let ba = max(Normal::from_mean_var(mb, vb), Normal::from_mean_var(ma, va));
            assert!(close(ab.mean(), ba.mean(), 1e-12));
            assert!(close(ab.var(), ba.var(), 1e-10));
        }
    }

    #[test]
    fn dominant_operand_limit() {
        // When A is far above B, max(A, B) ~ A.
        let a = Normal::new(100.0, 1.0);
        let b = Normal::new(0.0, 1.0);
        let c = max(a, b);
        assert!(close(c.mean(), 100.0, 1e-12));
        assert!(close(c.var(), 1.0, 1e-12));
    }

    #[test]
    fn degenerate_deterministic_max() {
        let a = Normal::certain(3.0);
        let b = Normal::certain(5.0);
        let c = max(a, b);
        assert!((c.mean() - 5.0).abs() < 1e-8);
        assert!(c.sigma() < 1e-8);
    }

    #[test]
    fn mean_dominates_operands() {
        for &[ma, va, mb, vb] in CASES {
            let c = max(Normal::from_mean_var(ma, va), Normal::from_mean_var(mb, vb));
            assert!(c.mean() >= ma.max(mb) - 1e-12, "max mean below operands");
        }
    }

    #[test]
    fn equal_operands_reduce_sigma() {
        // Known closed form: max of two iid N(mu, s^2) has mean
        // mu + s/sqrt(pi) and variance s^2 (1 - 1/pi).
        let mu = 2.0;
        let s = 1.5;
        let c = max(Normal::new(mu, s), Normal::new(mu, s));
        let want_mean = mu + s / std::f64::consts::PI.sqrt();
        let want_var = s * s * (1.0 - 1.0 / std::f64::consts::PI);
        assert!(close(c.mean(), want_mean, 1e-9));
        assert!(close(c.var(), want_var, 1e-9));
    }

    #[test]
    fn min_is_dual_of_max() {
        for &[ma, va, mb, vb] in CASES {
            let a = Normal::from_mean_var(ma, va);
            let b = Normal::from_mean_var(mb, vb);
            let mn = min(a, b);
            // E[min] + E[max] = E[A] + E[B] for any pair.
            let mx = max(a, b);
            assert!(
                close(mn.mean() + mx.mean(), ma + mb, 1e-9),
                "identity broken at {ma},{va},{mb},{vb}"
            );
            assert!(mn.mean() <= ma.min(mb) + 1e-12);
        }
    }

    #[test]
    fn min_matches_monte_carlo() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let a = Normal::new(4.0, 1.0);
        let b = Normal::new(4.5, 0.8);
        let exact = min(a, b);
        let mut rng = StdRng::seed_from_u64(99);
        let (m, v) = crate::mc::moments(
            (0..200_000)
                .map(|_| crate::mc::sample(a, &mut rng).min(crate::mc::sample(b, &mut rng))),
        );
        assert!(close(exact.mean(), m, 0.01));
        assert!(close(exact.var(), v, 0.05));
    }

    #[test]
    fn max_n_folds_left() {
        let xs = [
            Normal::new(1.0, 0.3),
            Normal::new(2.0, 0.4),
            Normal::new(1.5, 0.2),
        ];
        let folded = max_n(xs).unwrap();
        let manual = max(max(xs[0], xs[1]), xs[2]);
        assert_eq!(folded, manual);
        assert!(max_n(std::iter::empty()).is_none());
        assert_eq!(max_n([xs[0]]).unwrap(), xs[0]);
    }
}

/// Lanes processed per unrolled step of the batched kernels. Four lanes
/// keep the transcendental evaluations (`exp` inside the pdf, the cdf
/// series) adjacent so the out-of-order core overlaps their latency, while
/// the per-lane arithmetic stays scalar — and therefore bit-identical to
/// the one-pair functions.
const BATCH_LANES: usize = 4;

/// One lane of the batched moment kernel: exactly the operations of
/// [`moments_generic::<f64>`] given the precomputed frame values, plus the
/// counted clamp of [`max_eps`]. Returns `(mu_c, var_c, clamped)`.
#[inline]
#[allow(clippy::too_many_arguments)]
fn batch_moments_lane(
    mu_a: f64,
    var_a: f64,
    mu_b: f64,
    var_b: f64,
    theta: f64,
    phi: f64,
    cdf_p: f64,
    cdf_m: f64,
) -> (f64, f64, bool) {
    let mu_c = mu_a * cdf_p + mu_b * cdf_m + theta * phi;
    let e2 =
        (var_a + mu_a * mu_a) * cdf_p + (var_b + mu_b * mu_b) * cdf_m + (mu_a + mu_b) * theta * phi;
    let var = e2 - mu_c * mu_c;
    if var >= 0.0 {
        (mu_c, var, false)
    } else {
        // NaN falls here too but is a divergence, not a clamp — mirror
        // `clamp_var` exactly, including what gets counted.
        (mu_c, 0.0, var < 0.0)
    }
}

/// Batched Clark maximum over structure-of-arrays operands: lane `i`
/// computes `max(N(mu_a[i], var_a[i]), N(mu_b[i], var_b[i]))` into
/// `(out_mu[i], out_var[i])`.
///
/// Every lane is **bit-identical** to [`max_eps`] on the same operands —
/// same operation order, same smoothing floor, same counted variance
/// clamp — for any batch size and any position within the batch. The
/// speedup comes purely from schedule: operands stream from contiguous
/// arrays, the main loop is unrolled [`BATCH_LANES`] wide, and the
/// expensive `erf`/`exp`-class evaluations (pdf, both cdf orientations)
/// are hoisted into their own per-lane passes so their latencies overlap.
/// Clamp firings are accumulated locally and published to the process-wide
/// counter (see [`var_clamp_count`]) with a single atomic add per call.
///
/// # Panics
///
/// Panics if the six slices do not all have the same length.
pub fn max_batch(
    mu_a: &[f64],
    var_a: &[f64],
    mu_b: &[f64],
    var_b: &[f64],
    eps: f64,
    out_mu: &mut [f64],
    out_var: &mut [f64],
) {
    let n = mu_a.len();
    assert_eq!(var_a.len(), n, "batch length mismatch");
    assert_eq!(mu_b.len(), n, "batch length mismatch");
    assert_eq!(var_b.len(), n, "batch length mismatch");
    assert_eq!(out_mu.len(), n, "batch length mismatch");
    assert_eq!(out_var.len(), n, "batch length mismatch");
    let eps2 = eps * eps;
    let mut clamped = 0u64;

    let mut i = 0;
    while i + BATCH_LANES <= n {
        let mut theta = [0.0; BATCH_LANES];
        let mut alpha = [0.0; BATCH_LANES];
        let mut phi = [0.0; BATCH_LANES];
        let mut cdf_p = [0.0; BATCH_LANES];
        let mut cdf_m = [0.0; BATCH_LANES];
        for l in 0..BATCH_LANES {
            let t = (var_a[i + l] + var_b[i + l] + eps2).sqrt();
            theta[l] = t;
            alpha[l] = (mu_a[i + l] - mu_b[i + l]) / t;
        }
        for l in 0..BATCH_LANES {
            phi[l] = crate::special::normal_pdf(alpha[l]);
        }
        for l in 0..BATCH_LANES {
            cdf_p[l] = crate::special::normal_cdf(alpha[l]);
        }
        for l in 0..BATCH_LANES {
            cdf_m[l] = crate::special::normal_cdf(-alpha[l]);
        }
        for l in 0..BATCH_LANES {
            let (mu, var, c) = batch_moments_lane(
                mu_a[i + l],
                var_a[i + l],
                mu_b[i + l],
                var_b[i + l],
                theta[l],
                phi[l],
                cdf_p[l],
                cdf_m[l],
            );
            out_mu[i + l] = mu;
            out_var[i + l] = var;
            clamped += u64::from(c);
        }
        i += BATCH_LANES;
    }
    while i < n {
        let theta = (var_a[i] + var_b[i] + eps2).sqrt();
        let alpha = (mu_a[i] - mu_b[i]) / theta;
        let phi = crate::special::normal_pdf(alpha);
        let cdf_p = crate::special::normal_cdf(alpha);
        let cdf_m = crate::special::normal_cdf(-alpha);
        let (mu, var, c) = batch_moments_lane(
            mu_a[i], var_a[i], mu_b[i], var_b[i], theta, phi, cdf_p, cdf_m,
        );
        out_mu[i] = mu;
        out_var[i] = var;
        clamped += u64::from(c);
        i += 1;
    }
    if clamped > 0 {
        VAR_CLAMP_COUNT.fetch_add(clamped, Ordering::Relaxed);
        sgs_metrics::add(sgs_metrics::Counter::ClarkVarClamps, clamped);
    }
}

/// One lane of the batched gradient kernel: exactly [`max_grad`] given the
/// precomputed frame values (which use the `1 - Phi(alpha)` complement,
/// like [`frame`]). Returns the gradient struct plus the clamp flag.
#[inline]
#[allow(clippy::too_many_arguments)]
fn batch_grad_lane(
    mu_a: f64,
    var_a: f64,
    mu_b: f64,
    var_b: f64,
    theta: f64,
    alpha: f64,
    phi: f64,
    cdf_p: f64,
) -> (ClarkGrad, bool) {
    let cdf_m = 1.0 - cdf_p;
    let mu_c = mu_a * cdf_p + mu_b * cdf_m + theta * phi;
    let e2 =
        (var_a + mu_a * mu_a) * cdf_p + (var_b + mu_b * mu_b) * cdf_m + (mu_a + mu_b) * theta * phi;
    let w = var_a - var_b;
    let s = mu_a + mu_b;

    let dmu = [cdf_p, phi / (2.0 * theta), cdf_m, phi / (2.0 * theta)];
    let k_a = theta + w / theta;
    let k_b = theta - w / theta;
    let m = s / (2.0 * theta) - w * alpha / (2.0 * theta * theta);
    let de2 = [
        2.0 * mu_a * cdf_p + phi * k_a,
        cdf_p + phi * m,
        2.0 * mu_b * cdf_m + phi * k_b,
        cdf_m + phi * m,
    ];
    let mut dvar = [0.0; 4];
    for i in 0..4 {
        dvar[i] = de2[i] - 2.0 * mu_c * dmu[i];
    }
    let var = e2 - mu_c * mu_c;
    let (var, clamp) = if var >= 0.0 {
        (var, false)
    } else {
        (0.0, var < 0.0)
    };
    (
        ClarkGrad {
            mu: mu_c,
            var,
            dmu,
            dvar,
        },
        clamp,
    )
}

/// Batched [`max_grad`]: lane `i` evaluates the Clark moments **and exact
/// first derivatives** for the operand quadruple `(mu_a[i], var_a[i],
/// mu_b[i], var_b[i])` into `out[i]`.
///
/// Bit-identical to calling [`max_grad`] per lane (which computes the
/// complementary cdf as `1 - Phi(alpha)`, unlike the moment-only path);
/// the transcendental evaluations are hoisted and the loop unrolled as in
/// [`max_batch`], and variance clamps are counted with one atomic add.
///
/// # Panics
///
/// Panics if the five slices do not all have the same length.
pub fn max_grad_batch(
    mu_a: &[f64],
    var_a: &[f64],
    mu_b: &[f64],
    var_b: &[f64],
    eps: f64,
    out: &mut [ClarkGrad],
) {
    let n = mu_a.len();
    assert_eq!(var_a.len(), n, "batch length mismatch");
    assert_eq!(mu_b.len(), n, "batch length mismatch");
    assert_eq!(var_b.len(), n, "batch length mismatch");
    assert_eq!(out.len(), n, "batch length mismatch");
    let eps2 = eps * eps;
    let mut clamped = 0u64;

    let mut i = 0;
    while i + BATCH_LANES <= n {
        let mut theta = [0.0; BATCH_LANES];
        let mut alpha = [0.0; BATCH_LANES];
        let mut phi = [0.0; BATCH_LANES];
        let mut cdf_p = [0.0; BATCH_LANES];
        for l in 0..BATCH_LANES {
            let t = (var_a[i + l] + var_b[i + l] + eps2).sqrt();
            theta[l] = t;
            alpha[l] = (mu_a[i + l] - mu_b[i + l]) / t;
        }
        for l in 0..BATCH_LANES {
            phi[l] = crate::special::normal_pdf(alpha[l]);
        }
        for l in 0..BATCH_LANES {
            cdf_p[l] = crate::special::normal_cdf(alpha[l]);
        }
        for l in 0..BATCH_LANES {
            let (g, c) = batch_grad_lane(
                mu_a[i + l],
                var_a[i + l],
                mu_b[i + l],
                var_b[i + l],
                theta[l],
                alpha[l],
                phi[l],
                cdf_p[l],
            );
            out[i + l] = g;
            clamped += u64::from(c);
        }
        i += BATCH_LANES;
    }
    while i < n {
        let theta = (var_a[i] + var_b[i] + eps2).sqrt();
        let alpha = (mu_a[i] - mu_b[i]) / theta;
        let phi = crate::special::normal_pdf(alpha);
        let cdf_p = crate::special::normal_cdf(alpha);
        let (g, c) = batch_grad_lane(
            mu_a[i], var_a[i], mu_b[i], var_b[i], theta, alpha, phi, cdf_p,
        );
        out[i] = g;
        clamped += u64::from(c);
        i += 1;
    }
    if clamped > 0 {
        VAR_CLAMP_COUNT.fetch_add(clamped, Ordering::Relaxed);
        sgs_metrics::add(sgs_metrics::Counter::ClarkVarClamps, clamped);
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;

    /// Operand sets exercising dominance, near-ties and clamp-prone
    /// cancellation, tiled to arbitrary batch lengths.
    fn operands(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let base: &[[f64; 4]] = &[
            [0.0, 1.0, 0.0, 1.0],
            [5.0, 2.0, 4.5, 0.5],
            [-3.0, 0.1, -2.9, 0.4],
            [10.0, 4.0, 2.0, 0.01],
            [0.3, 1e-4, 0.30001, 1e-4],
            [-1.0, 9.0, 4.0, 1e-6],
            [100.0, 25.0, 99.0, 36.0],
            [2.0, 1e-12, 30.0, 1e-12], // dominant: clamp-prone
        ];
        let pick = |i: usize, j: usize| base[i % base.len()][j];
        (
            (0..n).map(|i| pick(i, 0)).collect(),
            (0..n).map(|i| pick(i, 1)).collect(),
            (0..n).map(|i| pick(i, 2)).collect(),
            (0..n).map(|i| pick(i, 3)).collect(),
        )
    }

    #[test]
    fn moments_bitwise_match_scalar_at_every_length() {
        for n in [0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 33] {
            let (ma, va, mb, vb) = operands(n);
            let mut om = vec![0.0; n];
            let mut ov = vec![0.0; n];
            max_batch(&ma, &va, &mb, &vb, DEFAULT_EPS, &mut om, &mut ov);
            for i in 0..n {
                let want = max_eps(
                    Normal::from_mean_var(ma[i], va[i]),
                    Normal::from_mean_var(mb[i], vb[i]),
                    DEFAULT_EPS,
                );
                assert_eq!(om[i].to_bits(), want.mean().to_bits(), "mu lane {i} of {n}");
                assert_eq!(ov[i].to_bits(), want.var().to_bits(), "var lane {i} of {n}");
            }
        }
    }

    #[test]
    fn grads_bitwise_match_scalar_at_every_length() {
        for n in [1, 3, 4, 6, 8, 11, 32] {
            let (ma, va, mb, vb) = operands(n);
            let mut out = vec![
                ClarkGrad {
                    mu: 0.0,
                    var: 0.0,
                    dmu: [0.0; 4],
                    dvar: [0.0; 4],
                };
                n
            ];
            max_grad_batch(&ma, &va, &mb, &vb, DEFAULT_EPS, &mut out);
            for i in 0..n {
                let want = max_grad(ma[i], va[i], mb[i], vb[i], DEFAULT_EPS);
                assert_eq!(out[i], want, "lane {i} of {n}");
            }
        }
    }

    #[test]
    fn clamp_counter_advances_exactly_as_scalar() {
        let (ma, va, mb, vb) = operands(64);
        // Scalar pass: count clamps the one-pair way.
        let before = var_clamp_count();
        for i in 0..64 {
            let _ = max_eps(
                Normal::from_mean_var(ma[i], va[i]),
                Normal::from_mean_var(mb[i], vb[i]),
                DEFAULT_EPS,
            );
        }
        let scalar_clamps = var_clamp_count() - before;
        // Batched pass must advance the counter by the same amount.
        let mut om = vec![0.0; 64];
        let mut ov = vec![0.0; 64];
        let before = var_clamp_count();
        max_batch(&ma, &va, &mb, &vb, DEFAULT_EPS, &mut om, &mut ov);
        assert_eq!(var_clamp_count() - before, scalar_clamps);
    }

    #[test]
    #[should_panic(expected = "batch length mismatch")]
    fn length_mismatch_rejected() {
        let mut om = [0.0; 2];
        let mut ov = [0.0; 2];
        max_batch(
            &[0.0, 1.0],
            &[1.0, 1.0],
            &[0.0],
            &[1.0, 1.0],
            DEFAULT_EPS,
            &mut om,
            &mut ov,
        );
    }
}

/// Moments of `max(A, B)` for **correlated** jointly normal operands with
/// correlation coefficient `rho` — Clark's general case, which the paper
/// lists as future work ("dealing with correlations between stochastic
/// variables in the circuit, as a result of reconverging paths").
///
/// The formulas are the independent ones with
/// `theta^2 = var_a + var_b - 2 rho sigma_a sigma_b`:
///
/// ```
/// use sgs_statmath::{clark, Normal};
/// let a = Normal::new(5.0, 1.0);
/// // Perfectly correlated identical operands: max(A, A) = A.
/// let c = clark::max_correlated(a, a, 1.0);
/// assert!((c.mean() - 5.0).abs() < 1e-6);
/// assert!((c.sigma() - 1.0).abs() < 1e-3);
/// ```
///
/// # Panics
///
/// Panics if `rho` is outside `[-1, 1]`.
pub fn max_correlated(a: Normal, b: Normal, rho: f64) -> Normal {
    assert!(
        (-1.0..=1.0).contains(&rho),
        "correlation out of range: {rho}"
    );
    let (sa, sb) = (a.sigma(), b.sigma());
    let theta2 = (a.var() + b.var() - 2.0 * rho * sa * sb).max(0.0) + DEFAULT_EPS * DEFAULT_EPS;
    let theta = theta2.sqrt();
    let alpha = (a.mean() - b.mean()) / theta;
    let phi = crate::special::normal_pdf(alpha);
    let cdf_p = crate::special::normal_cdf(alpha);
    let cdf_m = 1.0 - cdf_p;
    let mu = a.mean() * cdf_p + b.mean() * cdf_m + theta * phi;
    let e2 = (a.var() + a.mean() * a.mean()) * cdf_p
        + (b.var() + b.mean() * b.mean()) * cdf_m
        + (a.mean() + b.mean()) * theta * phi;
    Normal::from_mean_var(mu, clamp_var(e2 - mu * mu))
}

/// Clark's covariance propagation: for `C = max(A, B)` and any variable
/// `X` jointly normal with both, `cov(C, X) = cov(A, X) Phi(alpha) +
/// cov(B, X) Phi(-alpha)`. This returns the *tightness probability*
/// `Phi(alpha)` (the weight of operand A), which is all a canonical-form
/// SSTA needs to propagate sensitivities through a max.
pub fn tightness(a: Normal, b: Normal, rho: f64) -> f64 {
    assert!(
        (-1.0..=1.0).contains(&rho),
        "correlation out of range: {rho}"
    );
    let (sa, sb) = (a.sigma(), b.sigma());
    let theta2 = (a.var() + b.var() - 2.0 * rho * sa * sb).max(0.0) + DEFAULT_EPS * DEFAULT_EPS;
    let alpha = (a.mean() - b.mean()) / theta2.sqrt();
    crate::special::normal_cdf(alpha)
}

#[cfg(test)]
mod correlated_tests {
    use super::*;
    use crate::mc;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn rho_zero_matches_independent() {
        let a = Normal::new(3.0, 1.0);
        let b = Normal::new(2.5, 0.7);
        let ind = max(a, b);
        let cor = max_correlated(a, b, 0.0);
        assert!(close(ind.mean(), cor.mean(), 1e-12));
        assert!(close(ind.var(), cor.var(), 1e-10));
    }

    #[test]
    fn full_correlation_identical_operands_is_identity() {
        let a = Normal::new(-2.0, 1.5);
        let c = max_correlated(a, a, 1.0);
        assert!(close(c.mean(), a.mean(), 1e-6));
        assert!(close(c.var(), a.var(), 1e-4));
    }

    #[test]
    fn correlation_shrinks_max_mean_bump() {
        // For equal operands, the mean bump theta phi(0) shrinks as rho
        // grows: correlated paths do not "help each other up".
        let a = Normal::new(5.0, 1.0);
        let bump = |rho: f64| max_correlated(a, a, rho).mean() - 5.0;
        assert!(bump(0.0) > bump(0.5));
        assert!(bump(0.5) > bump(0.9));
        assert!(bump(0.9) > -1e-12);
    }

    #[test]
    fn correlated_max_matches_monte_carlo() {
        // Sample correlated pairs via a shared component.
        for &rho in &[-0.6, -0.2, 0.3, 0.8] {
            let a = Normal::new(4.0, 1.2);
            let b = Normal::new(4.4, 0.9);
            let exact = max_correlated(a, b, rho);
            let mut rng = StdRng::seed_from_u64(777);
            let n = 300_000;
            let (rho_abs, sign) = (rho.abs(), rho.signum());
            let (mean, var) = mc::moments((0..n).map(|_| {
                let shared = mc::standard_normal(&mut rng);
                let za = (rho_abs).sqrt() * shared
                    + (1.0 - rho_abs).sqrt() * mc::standard_normal(&mut rng);
                let zb = sign * rho_abs.sqrt() * shared
                    + (1.0 - rho_abs).sqrt() * mc::standard_normal(&mut rng);
                let xa = a.mean() + a.sigma() * za;
                let xb = b.mean() + b.sigma() * zb;
                xa.max(xb)
            }));
            assert!(
                close(exact.mean(), mean, 0.01),
                "rho {rho}: mean {} vs MC {mean}",
                exact.mean()
            );
            assert!(
                close(exact.var(), var, 0.05),
                "rho {rho}: var {} vs MC {var}",
                exact.var()
            );
        }
    }

    #[test]
    fn tightness_is_probability_and_monotone() {
        let b = Normal::new(5.0, 1.0);
        let mut prev = 0.0;
        for i in 0..20 {
            let mu = 2.0 + 0.3 * f64::from(i);
            let t = tightness(Normal::new(mu, 1.0), b, 0.2);
            assert!((0.0..=1.0).contains(&t));
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    #[should_panic(expected = "correlation out of range")]
    fn rho_checked() {
        let _ = max_correlated(Normal::certain(0.0), Normal::certain(0.0), 1.5);
    }
}
