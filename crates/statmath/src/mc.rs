//! Monte Carlo moment estimation, used to validate the analytical Clark
//! moments and (in `sgs-ssta`) whole-circuit delay distributions.

use crate::normal::Normal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws one sample from a normal variable using the Box-Muller transform.
///
/// Kept dependency-free (no `rand_distr`) on purpose; Box-Muller is exact.
pub fn sample<R: Rng + ?Sized>(n: Normal, rng: &mut R) -> f64 {
    n.mean() + n.sigma() * standard_normal(rng)
}

/// One standard-normal draw via Box-Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Sample mean and variance (with Bessel correction) of an iterator.
///
/// Returns `(mean, var)`; `(0, 0)` for fewer than two samples.
pub fn moments<I: IntoIterator<Item = f64>>(samples: I) -> (f64, f64) {
    // Welford's online algorithm: numerically stable single pass.
    let mut n = 0u64;
    let mut mean = 0.0;
    let mut m2 = 0.0;
    for x in samples {
        n += 1;
        let delta = x - mean;
        mean += delta / n as f64;
        m2 += delta * (x - mean);
    }
    if n < 2 {
        (mean, 0.0)
    } else {
        (mean, m2 / (n - 1) as f64)
    }
}

/// Estimates the distribution of `max(A, B)` by sampling.
///
/// ```
/// use sgs_statmath::{clark, mc, Normal};
/// let a = Normal::new(3.0, 1.0);
/// let b = Normal::new(3.5, 0.8);
/// let est = mc::max_moments(a, b, 200_000, 42);
/// let exact = clark::max(a, b);
/// assert!((est.mean() - exact.mean()).abs() < 0.02);
/// ```
pub fn max_moments(a: Normal, b: Normal, samples: usize, seed: u64) -> Normal {
    let mut rng = StdRng::seed_from_u64(seed);
    let (mean, var) = moments((0..samples).map(|_| sample(a, &mut rng).max(sample(b, &mut rng))));
    Normal::from_mean_var(mean, var.max(0.0))
}

/// Estimates the distribution of `max(A, B)` for *correlated* operands by
/// sampling: `B`'s draw reuses `A`'s standard-normal variate via the
/// Cholesky split `z_b = rho z_a + sqrt(1 - rho^2) z`, so the sampled pair
/// has exactly the requested correlation. The differential oracle for
/// [`crate::clark::max_correlated`] (paper Eqs. 10/12/13 with a `rho`
/// term).
///
/// # Panics
///
/// Panics if `rho` is outside `[-1, 1]`.
pub fn max_moments_correlated(a: Normal, b: Normal, rho: f64, samples: usize, seed: u64) -> Normal {
    assert!(
        (-1.0..=1.0).contains(&rho),
        "correlation out of range: {rho}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let cross = (1.0 - rho * rho).max(0.0).sqrt();
    let (mean, var) = moments((0..samples).map(|_| {
        let za = standard_normal(&mut rng);
        let zb = rho * za + cross * standard_normal(&mut rng);
        let xa = a.mean() + a.sigma() * za;
        let xb = b.mean() + b.sigma() * zb;
        xa.max(xb)
    }));
    Normal::from_mean_var(mean, var.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clark;

    #[test]
    fn welford_matches_direct() {
        let xs = [1.0, 2.0, 4.0, 8.0];
        let (m, v) = moments(xs.iter().copied());
        assert!((m - 3.75).abs() < 1e-12);
        // Direct two-pass variance with Bessel correction.
        let direct: f64 = xs.iter().map(|x| (x - 3.75f64).powi(2)).sum::<f64>() / 3.0;
        assert!((v - direct).abs() < 1e-12);
    }

    #[test]
    fn sampler_moments() {
        let n = Normal::new(-2.0, 3.0);
        let mut rng = StdRng::seed_from_u64(7);
        let (m, v) = moments((0..200_000).map(|_| sample(n, &mut rng)));
        assert!((m - -2.0).abs() < 0.05, "mean {m}");
        assert!((v - 9.0).abs() < 0.2, "var {v}");
    }

    #[test]
    fn clark_max_agrees_with_mc() {
        let cases = [
            (Normal::new(0.0, 1.0), Normal::new(0.0, 1.0)),
            (Normal::new(5.0, 2.0), Normal::new(4.0, 0.5)),
            (Normal::new(1.0, 0.1), Normal::new(1.05, 0.2)),
            (Normal::new(-3.0, 1.0), Normal::new(3.0, 1.0)),
        ];
        for (i, &(a, b)) in cases.iter().enumerate() {
            let exact = clark::max(a, b);
            let est = max_moments(a, b, 400_000, 1000 + i as u64);
            // MC standard error of the mean ~ sigma / sqrt(n) ~ 0.003; use a
            // generous 5x band.
            assert!(
                (est.mean() - exact.mean()).abs() < 0.02,
                "case {i}: mean {} vs {}",
                est.mean(),
                exact.mean()
            );
            assert!(
                (est.var() - exact.var()).abs() < 0.05 * (1.0 + exact.var()),
                "case {i}: var {} vs {}",
                est.var(),
                exact.var()
            );
        }
    }

    #[test]
    fn correlated_sampler_limits() {
        let a = Normal::new(2.0, 1.0);
        // rho = 1 with identical operands: max(X, X) = X exactly.
        let est = max_moments_correlated(a, a, 1.0, 100_000, 3);
        assert!((est.mean() - 2.0).abs() < 0.02, "mean {}", est.mean());
        assert!((est.var() - 1.0).abs() < 0.05, "var {}", est.var());
        // rho = -1: max(X, 2 mu - X) = mu + |X - mu|, a folded normal with
        // mean mu + sigma sqrt(2/pi) and var sigma^2 (1 - 2/pi).
        let est = max_moments_correlated(a, a, -1.0, 100_000, 4);
        let f = (2.0 / std::f64::consts::PI).sqrt();
        assert!((est.mean() - (2.0 + f)).abs() < 0.02, "mean {}", est.mean());
        assert!(
            (est.var() - (1.0 - f * f)).abs() < 0.05,
            "var {}",
            est.var()
        );
    }

    #[test]
    #[should_panic(expected = "correlation out of range")]
    fn correlated_sampler_rejects_bad_rho() {
        let a = Normal::new(0.0, 1.0);
        max_moments_correlated(a, a, 1.5, 10, 0);
    }

    #[test]
    fn empty_and_single_moments() {
        assert_eq!(moments(std::iter::empty()), (0.0, 0.0));
        assert_eq!(moments([5.0]), (5.0, 0.0));
    }
}
