//! Interval arithmetic with outward rounding, for static safety proofs.
//!
//! The pre-solve analyzer (`sgs-analyze`) propagates the feasible size box
//! `[S_min, S_max]` through the delay model and the arrival-time
//! recurrences to prove — before any solver iteration — that no reachable
//! point can divide by (near) zero, feed a negative variance into `sqrt`,
//! or overflow the NLP's scaling assumptions. That proof is only as good
//! as the enclosure, so every operation here is **outward rounded**: the
//! result interval is widened by a couple of ULPs (plus a relative margin
//! for the transcendental approximations of [`crate::special`]) so the
//! true real-arithmetic image is always contained.
//!
//! The operation set is exactly what the delay/arrival recurrences need:
//! `+ − × ÷ x² sqrt exp`, the standard normal `Φ`/`φ`, and an interval
//! version of Clark's stochastic max ([`clark_max`]) built compositionally
//! from the closed-form moment formulas (paper Eqs. 10/12/13). Endpoint
//! evaluation of the concrete formulas would *not* be sound for the
//! variance (it is not monotone in its operands); evaluating the formula
//! text under interval semantics is.
//!
//! Enclosures are conservative, not tight: the classic dependency problem
//! (e.g. `E[C²] − μ_C²` treating the two occurrences of `μ_C` as
//! independent) widens results, but containment — the property the
//! analyzer's verdicts rest on, and the property the proptest suite checks
//! — always holds.

use crate::special::{normal_cdf, normal_pdf};

/// Relative widening applied after `Φ`, `φ` and `exp`, covering the
/// approximation error of [`crate::special`] (double-precision rational
/// approximations, accurate to ~1e-15 relative) with a safety factor.
const REL_TRANSCENDENTAL: f64 = 1e-12;

/// Absolute widening floor so outward rounding never degenerates at 0.
const TINY: f64 = 1e-300;

/// The next representable `f64` above `x` (infinities and NaN fixed).
fn next_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    let bits = if x == 0.0 {
        1 // smallest positive subnormal; works for -0.0 too
    } else if x > 0.0 {
        x.to_bits() + 1
    } else {
        x.to_bits() - 1
    };
    f64::from_bits(bits)
}

/// The next representable `f64` below `x` (infinities and NaN fixed).
fn next_down(x: f64) -> f64 {
    -next_up(-x)
}

/// A closed interval `[lo, hi]` of `f64` with `lo <= hi`.
///
/// Endpoints may be infinite (e.g. after a division by an interval
/// containing zero); they are never NaN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// The interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either endpoint is NaN.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "invalid interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The degenerate interval `[x, x]`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn point(x: f64) -> Self {
        Self::new(x, x)
    }

    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// `hi - lo` (infinite for unbounded intervals).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether `x` lies in the closed interval.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Whether both endpoints are finite.
    pub fn is_finite(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// Smallest interval containing both operands.
    pub fn hull(self, other: Self) -> Self {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Outward rounding: two ULPs in each direction, absorbing the at most
    /// one-ULP rounding error of each IEEE basic operation with margin.
    fn out(lo: f64, hi: f64) -> Self {
        Self::new(next_down(next_down(lo)), next_up(next_up(hi)))
    }

    /// Outward rounding for transcendental results: ULP nudges plus a
    /// relative + absolute margin for the approximation error.
    fn out_rel(lo: f64, hi: f64) -> Self {
        let lo = lo - REL_TRANSCENDENTAL * lo.abs() - TINY;
        let hi = hi + REL_TRANSCENDENTAL * hi.abs() + TINY;
        Self::out(lo, hi)
    }

    /// Tight enclosure of `x²` (non-negative even when the interval
    /// straddles zero, unlike `self * self`).
    pub fn sqr(self) -> Self {
        let (a, b) = (self.lo.abs(), self.hi.abs());
        let big = a.max(b);
        let small = if self.lo <= 0.0 && self.hi >= 0.0 {
            0.0
        } else {
            a.min(b)
        };
        Self::out(small * small, big * big)
    }

    /// Enclosure of `sqrt(x)`.
    ///
    /// # Panics
    ///
    /// Panics if the interval contains negative values; callers must clamp
    /// first (see [`Interval::max_const`]) exactly as the concrete code
    /// clamps variances.
    pub fn sqrt(self) -> Self {
        assert!(self.lo >= 0.0, "sqrt of interval reaching {}", self.lo);
        let r = Self::out(self.lo.sqrt(), self.hi.sqrt());
        // sqrt maps [0, inf) into [0, inf); outward rounding must not
        // escape the codomain.
        Self::new(r.lo.max(0.0), r.hi)
    }

    /// Enclosure of `exp(x)` (monotone).
    pub fn exp(self) -> Self {
        let r = Self::out_rel(self.lo.exp(), self.hi.exp());
        Self::new(r.lo.max(0.0), r.hi)
    }

    /// Enclosure of the standard normal density `φ(x)`: even, unimodal
    /// with maximum `φ(0)`, so the maximum is at the point of smallest
    /// magnitude and the minimum at the point of largest magnitude.
    pub fn norm_pdf(self) -> Self {
        let hi = if self.contains(0.0) {
            normal_pdf(0.0)
        } else {
            normal_pdf(self.lo.abs().min(self.hi.abs()))
        };
        let lo = normal_pdf(self.lo.abs().max(self.hi.abs()));
        let r = Self::out_rel(lo.min(hi), hi.max(lo));
        Self::new(r.lo.max(0.0), r.hi)
    }

    /// Enclosure of the standard normal CDF `Φ(x)` (monotone increasing).
    pub fn norm_cdf(self) -> Self {
        let r = Self::out_rel(normal_cdf(self.lo), normal_cdf(self.hi));
        Self::new(r.lo.max(0.0), r.hi.min(1.0))
    }

    /// Enclosure of `max(x, c)` — the image of the clamp the concrete
    /// Clark code applies to variances.
    pub fn max_const(self, c: f64) -> Self {
        Self::new(self.lo.max(c), self.hi.max(c))
    }
}

/// `0 * ±inf` must contribute `0` to endpoint products (the IEEE NaN would
/// otherwise poison the enclosure); every other product is exact-directed.
fn mul_pt(a: f64, b: f64) -> f64 {
    let p = a * b;
    if p.is_nan() && (a == 0.0 || b == 0.0) {
        0.0
    } else {
        p
    }
}

impl std::ops::Neg for Interval {
    type Output = Interval;
    fn neg(self) -> Interval {
        Interval {
            lo: -self.hi,
            hi: -self.lo,
        }
    }
}

impl std::ops::Add for Interval {
    type Output = Interval;
    fn add(self, rhs: Interval) -> Interval {
        Interval::out(self.lo + rhs.lo, self.hi + rhs.hi)
    }
}

impl std::ops::Add<f64> for Interval {
    type Output = Interval;
    fn add(self, rhs: f64) -> Interval {
        self + Interval::point(rhs)
    }
}

impl std::ops::Sub for Interval {
    type Output = Interval;
    fn sub(self, rhs: Interval) -> Interval {
        Interval::out(self.lo - rhs.hi, self.hi - rhs.lo)
    }
}

impl std::ops::Mul for Interval {
    type Output = Interval;
    fn mul(self, rhs: Interval) -> Interval {
        let ps = [
            mul_pt(self.lo, rhs.lo),
            mul_pt(self.lo, rhs.hi),
            mul_pt(self.hi, rhs.lo),
            mul_pt(self.hi, rhs.hi),
        ];
        let lo = ps.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Interval::out(lo, hi)
    }
}

impl std::ops::Mul<f64> for Interval {
    type Output = Interval;
    fn mul(self, rhs: f64) -> Interval {
        self * Interval::point(rhs)
    }
}

impl std::ops::Div for Interval {
    type Output = Interval;
    fn div(self, rhs: Interval) -> Interval {
        if rhs.contains(0.0) {
            // Division by an interval reaching zero: the image is
            // unbounded. Returning the whole line keeps the enclosure
            // sound; the analyzer flags the zero-crossing divisor itself
            // as the actual finding.
            return Interval::new(f64::NEG_INFINITY, f64::INFINITY);
        }
        let qs = [
            self.lo / rhs.lo,
            self.lo / rhs.hi,
            self.hi / rhs.lo,
            self.hi / rhs.hi,
        ];
        let lo = qs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = qs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Interval::out(lo, hi)
    }
}

/// Interval enclosure of the Clark max moments of `C = max(A, B)`.
#[derive(Debug, Clone, Copy)]
pub struct ClarkBounds {
    /// Enclosure of `θ² = var_a + var_b + ε²` — the `sqrt` argument the
    /// analyzer must prove positive.
    pub theta2: Interval,
    /// Enclosure of `μ_C` (Eq. 10).
    pub mu: Interval,
    /// Enclosure of `var_C = E[C²] − μ_C²` (Eq. 13) **before** the
    /// non-negativity clamp: a negative lower bound means the analyzer
    /// cannot prove the runtime clamp never fires.
    pub var_raw: Interval,
}

impl ClarkBounds {
    /// Enclosure of the clamped variance `max(var_C, 0)` — the value the
    /// concrete code ([`crate::clark::max_eps`]) actually returns.
    pub fn var_clamped(&self) -> Interval {
        self.var_raw.max_const(0.0)
    }
}

/// Interval version of Clark's stochastic max (Eqs. 10/12/13), evaluated
/// compositionally so the enclosure is sound for *every* concrete operand
/// quadruple inside the input boxes:
/// [`crate::clark::max_eps`]`(a, b, eps)` has its mean in `mu` and its
/// (clamped) variance in `var_clamped()` whenever `a.mean() ∈ mu_a`,
/// `a.var() ∈ var_a`, etc.
///
/// # Panics
///
/// Panics if the `θ²` enclosure reaches zero or below (variance inputs
/// must be clamped non-negative first, and `eps` must be positive — both
/// mirror the concrete evaluation's preconditions).
pub fn clark_max(
    mu_a: Interval,
    var_a: Interval,
    mu_b: Interval,
    var_b: Interval,
    eps: f64,
) -> ClarkBounds {
    let theta2 = var_a + var_b + eps * eps;
    assert!(
        theta2.lo() > 0.0,
        "interval Clark max needs theta^2 > 0, got lower bound {}",
        theta2.lo()
    );
    let theta = theta2.sqrt();
    let alpha = (mu_a - mu_b) / theta;
    let phi = alpha.norm_pdf();
    let cdf_p = alpha.norm_cdf();
    let cdf_m = (-alpha).norm_cdf();
    let mu_c = mu_a * cdf_p + mu_b * cdf_m + theta * phi;
    let e2 =
        (var_a + mu_a.sqr()) * cdf_p + (var_b + mu_b.sqr()) * cdf_m + (mu_a + mu_b) * theta * phi;
    ClarkBounds {
        theta2,
        mu: mu_c,
        var_raw: e2 - mu_c.sqr(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clark;
    use crate::normal::Normal;

    /// Deterministic splitmix64 stream for sampled containment checks.
    fn splitmix(state: &mut u64) -> f64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn sample(iv: Interval, state: &mut u64) -> f64 {
        iv.lo() + splitmix(state) * iv.width()
    }

    #[test]
    fn endpoint_nudges_move_outward() {
        assert!(next_up(1.0) > 1.0);
        assert!(next_down(1.0) < 1.0);
        assert!(next_up(0.0) > 0.0);
        assert!(next_down(0.0) < 0.0);
        assert!(next_up(-1.0) > -1.0);
        assert_eq!(next_up(f64::INFINITY), f64::INFINITY);
        assert_eq!(next_down(f64::NEG_INFINITY), f64::NEG_INFINITY);
        assert_eq!(next_up(f64::MAX), f64::INFINITY);
    }

    #[test]
    fn arithmetic_contains_sampled_points() {
        let cases = [
            (Interval::new(1.0, 3.0), Interval::new(-2.0, 0.5)),
            (Interval::new(-5.0, -1.0), Interval::new(0.1, 0.2)),
            (Interval::new(0.0, 1e6), Interval::new(1e-9, 2.0)),
            (Interval::point(2.5), Interval::new(-1.0, 1.0)),
        ];
        let mut st = 7u64;
        for (a, b) in cases {
            for _ in 0..200 {
                let x = sample(a, &mut st);
                let y = sample(b, &mut st);
                assert!((a + b).contains(x + y));
                assert!((a - b).contains(x - y));
                assert!((a * b).contains(x * y));
                assert!((-a).contains(-x));
                assert!(a.sqr().contains(x * x));
                if !b.contains(0.0) {
                    assert!((a / b).contains(x / y));
                }
                assert!(a.norm_cdf().contains(crate::special::normal_cdf(x)));
                assert!(a.norm_pdf().contains(crate::special::normal_pdf(x)));
                if a.lo() >= 0.0 {
                    assert!(a.sqrt().contains(x.max(0.0).sqrt()));
                }
                if x.abs() < 30.0 {
                    assert!(Interval::new(-30.0, 30.0).exp().contains(x.exp()));
                }
            }
        }
    }

    #[test]
    fn division_by_zero_crossing_interval_is_whole_line() {
        let q = Interval::new(1.0, 2.0) / Interval::new(-1.0, 1.0);
        assert_eq!(q.lo(), f64::NEG_INFINITY);
        assert_eq!(q.hi(), f64::INFINITY);
    }

    #[test]
    fn sqr_straddling_zero_starts_at_zero() {
        let s = Interval::new(-2.0, 3.0).sqr();
        assert!(s.lo() <= 0.0 && s.lo() >= -1e-300);
        assert!(s.contains(0.0));
        assert!(s.contains(9.0));
        assert!(s.hi() < 9.1);
    }

    #[test]
    fn clark_contains_concrete_at_endpoints_and_interior() {
        // Boxes around the adversarial concrete cases of clark::tests.
        let cases: &[[f64; 4]] = &[
            [0.0, 1.0, 0.0, 1.0],
            [1.0, 1.0, 0.0, 1.0],
            [5.0, 2.0, 4.5, 0.5],
            [-3.0, 0.1, -2.9, 0.4],
            [10.0, 4.0, 2.0, 0.01],
            [7.4, 3.4225, 7.4, 3.4225],
            [100.0, 25.0, 99.0, 36.0],
            [-1.0, 9.0, 4.0, 1e-6],
        ];
        let mut st = 42u64;
        for &[ma, va, mb, vb] in cases {
            let mu_a = Interval::new(ma - 0.5, ma + 0.5);
            let var_a = Interval::new(va * 0.5, va * 1.5);
            let mu_b = Interval::new(mb - 0.5, mb + 0.5);
            let var_b = Interval::new(vb * 0.5, vb * 1.5);
            let bounds = clark_max(mu_a, var_a, mu_b, var_b, clark::DEFAULT_EPS);
            // Endpoints, centre and sampled interior points.
            let mut points = vec![
                [mu_a.lo(), var_a.lo(), mu_b.lo(), var_b.lo()],
                [mu_a.hi(), var_a.hi(), mu_b.hi(), var_b.hi()],
                [mu_a.lo(), var_a.hi(), mu_b.hi(), var_b.lo()],
                [ma, va, mb, vb],
            ];
            for _ in 0..50 {
                points.push([
                    sample(mu_a, &mut st),
                    sample(var_a, &mut st),
                    sample(mu_b, &mut st),
                    sample(var_b, &mut st),
                ]);
            }
            for p in points {
                let c = clark::max_eps(
                    Normal::from_mean_var(p[0], p[1]),
                    Normal::from_mean_var(p[2], p[3]),
                    clark::DEFAULT_EPS,
                );
                assert!(
                    bounds.mu.contains(c.mean()),
                    "mu {} outside {:?} at {p:?}",
                    c.mean(),
                    bounds.mu
                );
                assert!(
                    bounds.var_clamped().contains(c.var()),
                    "var {} outside {:?} at {p:?}",
                    c.var(),
                    bounds.var_clamped()
                );
            }
        }
    }

    #[test]
    fn clark_degenerate_point_intervals_are_tight() {
        let b = clark_max(
            Interval::point(1.0),
            Interval::point(1.0),
            Interval::point(0.0),
            Interval::point(1.0),
            clark::DEFAULT_EPS,
        );
        let c = clark::max(
            Normal::from_mean_var(1.0, 1.0),
            Normal::from_mean_var(0.0, 1.0),
        );
        assert!(b.mu.contains(c.mean()));
        assert!(b.var_clamped().contains(c.var()));
        assert!(b.mu.width() < 1e-6, "point enclosure too wide: {:?}", b.mu);
        assert!(b.var_raw.width() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "theta^2 > 0")]
    fn clark_rejects_unprovable_theta() {
        let _ = clark_max(
            Interval::point(0.0),
            Interval::new(-1.0, 1.0),
            Interval::point(0.0),
            Interval::point(0.0),
            0.0,
        );
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn inverted_interval_rejected() {
        let _ = Interval::new(2.0, 1.0);
    }
}
