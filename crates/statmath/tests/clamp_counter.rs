//! The Clark variance clamp (`var.max(0.0)` in spirit) must *count* when
//! it actually fires: silent clamping hid genuine numerical trouble. This
//! file runs in its own test process and holds a single test, so the
//! process-global counter is only touched by the calls below.

use sgs_statmath::{clark, Normal};

/// Operands found by randomized search that make `E[C^2] - mu_C^2` go
/// slightly negative through catastrophic cancellation: B dominates with
/// `alpha ~ -7.4`, so the exact variance (~var_b) survives only as the
/// difference of two ~3e5 quantities.
fn clamping_operands() -> (Normal, Normal) {
    (
        Normal::new(45.819_505_757_673_95, 68.475_129_009_259_67),
        Normal::new(549.342_819_022_493_9, 3.915_233_261_414_990_7e-7),
    )
}

#[test]
fn counter_counts_actual_clamps_only() {
    let before = clark::var_clamp_count();

    // Benign: comparable operands, no cancellation.
    let _ = clark::max(Normal::new(1.0, 0.5), Normal::new(1.2, 0.4));
    assert_eq!(
        clark::var_clamp_count(),
        before,
        "benign max must not count a clamp"
    );

    let (a, b) = clamping_operands();
    let c = clark::max(a, b);
    let after = clark::var_clamp_count();
    assert!(
        after > before,
        "cancellation-prone max must count its clamp"
    );
    // The clamp resolves the negative variance to exactly zero.
    assert_eq!(c.var(), 0.0);
    assert!(c.mean() > 549.0);

    // Each firing counts: three more evaluations, three more clamps.
    for _ in 0..3 {
        let _ = clark::max(a, b);
    }
    assert_eq!(clark::var_clamp_count(), after + 3);

    // The n-ary fold (the SSTA entry point) routes through the same
    // counted clamp.
    let mid = clark::var_clamp_count();
    let folded = clark::max_n([a, b]).expect("two operands fold to one");
    assert!(clark::var_clamp_count() > mid);
    assert!(folded.mean() > 549.0);
}
