//! Differential oracle for the batched Clark-max kernels: on arbitrary
//! operand vectors, [`clark::max_batch`] and [`clark::max_grad_batch`]
//! must be **bit-identical** to the scalar [`clark::max_eps`] /
//! [`clark::max_grad`] applied lane by lane — values, derivatives and
//! the global variance-clamp counter alike — and a lane's result must
//! not depend on the batch length or on where in the batch it sits
//! (unrolled main loop vs scalar remainder).

use proptest::prelude::*;
use sgs_statmath::clark::{self, ClarkGrad, DEFAULT_EPS};
use sgs_statmath::Normal;

/// Operand domain: the mean/variance ranges gate sizing produces, plus
/// the near-degenerate variances that provoke the clamp.
fn lane() -> impl Strategy<Value = (f64, f64, f64, f64)> {
    (
        -50.0..200.0f64,
        prop_oneof![0.0..25.0f64, 1e-14..1e-9f64],
        -50.0..200.0f64,
        prop_oneof![0.0..25.0f64, 1e-14..1e-9f64],
    )
}

fn split(lanes: &[(f64, f64, f64, f64)]) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
    let mu_a = lanes.iter().map(|l| l.0).collect();
    let var_a = lanes.iter().map(|l| l.1).collect();
    let mu_b = lanes.iter().map(|l| l.2).collect();
    let var_b = lanes.iter().map(|l| l.3).collect();
    (mu_a, var_a, mu_b, var_b)
}

fn scalar_moments(lanes: &[(f64, f64, f64, f64)], eps: f64) -> Vec<Normal> {
    lanes
        .iter()
        .map(|&(ma, va, mb, vb)| {
            clark::max_eps(
                Normal::from_mean_var(ma, va),
                Normal::from_mean_var(mb, vb),
                eps,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Moments: every lane of every batch length 0..=19 (covering the
    // 4-wide main loop, the remainder loop and their boundary) is
    // bit-for-bit the scalar result.
    #[test]
    fn batch_moments_bitwise_match_scalar(
        lanes in prop::collection::vec(lane(), 0..20),
        eps in prop_oneof![Just(DEFAULT_EPS), 1e-9..1e-3f64],
    ) {
        let (mu_a, var_a, mu_b, var_b) = split(&lanes);
        let expect = scalar_moments(&lanes, eps);
        let mut out_mu = vec![f64::NAN; lanes.len()];
        let mut out_var = vec![f64::NAN; lanes.len()];
        clark::max_batch(&mu_a, &var_a, &mu_b, &var_b, eps, &mut out_mu, &mut out_var);
        for (i, e) in expect.iter().enumerate() {
            prop_assert_eq!(
                out_mu[i].to_bits(), e.mean().to_bits(),
                "lane {} of {}: mu {} vs scalar {}", i, lanes.len(), out_mu[i], e.mean()
            );
            prop_assert_eq!(
                out_var[i].to_bits(), e.var().to_bits(),
                "lane {} of {}: var {} vs scalar {}", i, lanes.len(), out_var[i], e.var()
            );
        }
    }

    // A lane's result is invariant under batch position: evaluating the
    // same operands alone, at the head of the unrolled loop, and in the
    // scalar remainder yields identical bits.
    #[test]
    fn lane_result_is_position_independent(
        probe in lane(),
        filler in prop::collection::vec(lane(), 0..12),
        at in 0..13usize,
    ) {
        let at = at.min(filler.len());
        let mut lanes = filler;
        lanes.insert(at, probe);
        let (mu_a, var_a, mu_b, var_b) = split(&lanes);
        let mut out_mu = vec![0.0; lanes.len()];
        let mut out_var = vec![0.0; lanes.len()];
        clark::max_batch(&mu_a, &var_a, &mu_b, &var_b, DEFAULT_EPS, &mut out_mu, &mut out_var);

        let mut solo_mu = [0.0];
        let mut solo_var = [0.0];
        clark::max_batch(
            &[probe.0], &[probe.1], &[probe.2], &[probe.3],
            DEFAULT_EPS, &mut solo_mu, &mut solo_var,
        );
        prop_assert_eq!(out_mu[at].to_bits(), solo_mu[0].to_bits());
        prop_assert_eq!(out_var[at].to_bits(), solo_var[0].to_bits());
    }

    // Gradients: value and all eight partials per lane are bit-for-bit
    // the scalar `max_grad` result at every batch length.
    #[test]
    fn batch_grads_bitwise_match_scalar(
        lanes in prop::collection::vec(lane(), 0..20),
    ) {
        let (mu_a, var_a, mu_b, var_b) = split(&lanes);
        let expect: Vec<ClarkGrad> = lanes
            .iter()
            .map(|&(ma, va, mb, vb)| clark::max_grad(ma, va, mb, vb, DEFAULT_EPS))
            .collect();
        let mut out = vec![
            ClarkGrad { mu: 0.0, var: 0.0, dmu: [0.0; 4], dvar: [0.0; 4] };
            lanes.len()
        ];
        clark::max_grad_batch(&mu_a, &var_a, &mu_b, &var_b, DEFAULT_EPS, &mut out);
        for (i, (got, want)) in out.iter().zip(&expect).enumerate() {
            prop_assert_eq!(got.mu.to_bits(), want.mu.to_bits(), "lane {}: mu", i);
            prop_assert_eq!(got.var.to_bits(), want.var.to_bits(), "lane {}: var", i);
            for k in 0..4 {
                prop_assert_eq!(got.dmu[k].to_bits(), want.dmu[k].to_bits(), "lane {}: dmu[{}]", i, k);
                prop_assert_eq!(got.dvar[k].to_bits(), want.dvar[k].to_bits(), "lane {}: dvar[{}]", i, k);
            }
        }
    }

}
