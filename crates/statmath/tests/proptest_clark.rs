//! Property-based tests for the statistical algebra: the Clark max must
//! behave like a maximum, and every hand-derived derivative must agree
//! with the independent hyper-dual evaluation on arbitrary inputs.

use proptest::prelude::*;
use sgs_statmath::clark::{self, DEFAULT_EPS};
use sgs_statmath::special::{normal_cdf, normal_quantile};
use sgs_statmath::Normal;

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

/// Operand domain: means and sigmas in the ranges gate sizing produces.
fn operand() -> impl Strategy<Value = (f64, f64)> {
    (-50.0..200.0f64, 0.001..20.0f64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn max_mean_dominates_operands(
        (ma, sa) in operand(),
        (mb, sb) in operand(),
    ) {
        let c = clark::max(Normal::new(ma, sa), Normal::new(mb, sb));
        prop_assert!(c.mean() >= ma.max(mb) - 1e-9);
    }

    #[test]
    fn max_variance_nonnegative_and_bounded(
        (ma, sa) in operand(),
        (mb, sb) in operand(),
    ) {
        let c = clark::max(Normal::new(ma, sa), Normal::new(mb, sb));
        prop_assert!(c.var() >= 0.0);
        // The max of two normals never has more variance than the
        // larger operand variance plus the mean gap effect; a loose but
        // real bound: var <= var_a + var_b.
        prop_assert!(c.var() <= sa * sa + sb * sb + 1e-9);
    }

    #[test]
    fn max_commutative(
        (ma, sa) in operand(),
        (mb, sb) in operand(),
    ) {
        let ab = clark::max(Normal::new(ma, sa), Normal::new(mb, sb));
        let ba = clark::max(Normal::new(mb, sb), Normal::new(ma, sa));
        prop_assert!(close(ab.mean(), ba.mean(), 1e-12));
        prop_assert!(close(ab.var(), ba.var(), 1e-9));
    }

    #[test]
    fn max_monotone_in_operand_mean(
        (ma, sa) in operand(),
        (mb, sb) in operand(),
        bump in 0.01..10.0f64,
    ) {
        let lo = clark::max(Normal::new(ma, sa), Normal::new(mb, sb));
        let hi = clark::max(Normal::new(ma + bump, sa), Normal::new(mb, sb));
        prop_assert!(hi.mean() >= lo.mean() - 1e-10);
    }

    #[test]
    fn max_shift_equivariant(
        (ma, sa) in operand(),
        (mb, sb) in operand(),
        shift in -50.0..50.0f64,
    ) {
        // max(A + t, B + t) = max(A, B) + t.
        let base = clark::max(Normal::new(ma, sa), Normal::new(mb, sb));
        let moved = clark::max(Normal::new(ma + shift, sa), Normal::new(mb + shift, sb));
        prop_assert!(close(moved.mean(), base.mean() + shift, 1e-9));
        prop_assert!(close(moved.var(), base.var(), 1e-7));
    }

    #[test]
    fn dominant_operand_limit(
        (ma, sa) in operand(),
        (mb, sb) in operand(),
    ) {
        // Push A far above B: the max converges to A.
        let c = clark::max(Normal::new(ma + 1000.0, sa), Normal::new(mb, sb));
        prop_assert!(close(c.mean(), ma + 1000.0, 1e-9));
        prop_assert!(close(c.var(), sa * sa, 1e-7));
    }

    #[test]
    fn closed_form_derivatives_match_hyper_dual(
        (ma, sa) in operand(),
        (mb, sb) in operand(),
    ) {
        let (va, vb) = (sa * sa, sb * sb);
        let h = clark::max_hess(ma, va, mb, vb, DEFAULT_EPS);
        let d = clark::max_hess_dual(ma, va, mb, vb, DEFAULT_EPS);
        prop_assert!(close(h.mu, d.mu, 1e-11), "mu {} vs {}", h.mu, d.mu);
        prop_assert!(close(h.var, d.var, 1e-8), "var {} vs {}", h.var, d.var);
        for i in 0..4 {
            prop_assert!(close(h.dmu[i], d.dmu[i], 1e-9));
            prop_assert!(close(h.dvar[i], d.dvar[i], 1e-7));
            for j in 0..4 {
                prop_assert!(
                    close(h.hmu[i][j], d.hmu[i][j], 1e-6),
                    "hmu[{i}][{j}] {} vs {}", h.hmu[i][j], d.hmu[i][j]
                );
                prop_assert!(
                    close(h.hvar[i][j], d.hvar[i][j], 1e-5),
                    "hvar[{i}][{j}] {} vs {}", h.hvar[i][j], d.hvar[i][j]
                );
            }
        }
    }

    #[test]
    fn fold_is_order_insensitive_in_mean_upper_bound(
        ops in prop::collection::vec(operand(), 1..6),
    ) {
        // The left fold is not exactly permutation-invariant (the paper
        // notes multi-operand max as future work) but its mean must
        // always dominate every operand mean.
        let ns: Vec<Normal> = ops.iter().map(|&(m, s)| Normal::new(m, s)).collect();
        let folded = clark::max_n(ns.clone()).unwrap();
        for n in &ns {
            prop_assert!(folded.mean() >= n.mean() - 1e-9);
        }
    }

    #[test]
    fn cdf_in_unit_interval_and_monotone(x in -100.0..100.0f64, dx in 0.0..10.0f64) {
        let a = normal_cdf(x);
        let b = normal_cdf(x + dx);
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!(b >= a);
    }

    #[test]
    fn quantile_inverts_cdf(p in 0.0001..0.9999f64) {
        let x = normal_quantile(p);
        prop_assert!(close(normal_cdf(x), p, 1e-10));
    }

    #[test]
    fn add_then_max_degenerate_consistency((m, s) in operand(), shift in 0.1..30.0f64) {
        // max(A, A + shift) with shift >> sigma tends to A + shift.
        let a = Normal::new(m, s);
        let b = Normal::new(m + shift + 50.0 * s, s);
        let c = clark::max(a, b);
        prop_assert!(close(c.mean(), b.mean(), 1e-9));
    }
}
