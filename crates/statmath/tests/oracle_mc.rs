//! Differential oracle: the analytical Clark max (paper Eqs. 10/12/13)
//! against large-sample Monte Carlo over random operand configurations,
//! including the two regimes where an analytical max can quietly go wrong:
//! near-equal means (the blending region, where the result is least
//! normal) and a dominant operand (where the result must collapse to the
//! dominant input). Tolerances are scaled to the Monte Carlo standard
//! error of the estimate, not to fixed magic numbers.

use proptest::prelude::*;
use sgs_statmath::{clark, mc, Normal};

const SAMPLES: usize = 200_000;

/// Deterministic per-case RNG seed derived from the operand bits, so a
/// proptest failure replays with the identical sample stream.
fn seed_for(ma: f64, sa: f64, mb: f64, sb: f64, rho: f64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in [ma, sa, mb, sb, rho] {
        h ^= v.to_bits();
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Monte Carlo standard error of a mean estimated from `n` samples with
/// population sigma at most `sigma`.
fn mean_se(sigma: f64, n: usize) -> f64 {
    sigma / (n as f64).sqrt()
}

/// Monte Carlo standard error of a variance estimate (normal-theory
/// `sigma^2 sqrt(2/n)`, inflated because the max is skewed, not normal).
fn var_se(var: f64, n: usize) -> f64 {
    2.0 * var * (2.0 / n as f64).sqrt()
}

fn check_against_mc(a: Normal, b: Normal, rho: f64) -> Result<(), TestCaseError> {
    let exact = clark::max_correlated(a, b, rho);
    let seed = seed_for(a.mean(), a.sigma(), b.mean(), b.sigma(), rho);
    let est = mc::max_moments_correlated(a, b, rho, SAMPLES, seed);
    // sigma of the max never exceeds the larger operand sigma (plus the
    // mean-gap effect already inside `exact`); bound the SE with both.
    let sig_bound = a.sigma().max(b.sigma()).max(exact.sigma());
    let mean_tol = 6.0 * mean_se(sig_bound, SAMPLES) + 1e-9;
    let var_tol = 6.0 * var_se(sig_bound * sig_bound, SAMPLES) + 1e-9;
    prop_assert!(
        (est.mean() - exact.mean()).abs() <= mean_tol,
        "mean: clark {} vs mc {} (tol {mean_tol:.2e}, rho {rho})",
        exact.mean(),
        est.mean()
    );
    prop_assert!(
        (est.var() - exact.var()).abs() <= var_tol,
        "var: clark {} vs mc {} (tol {var_tol:.2e}, rho {rho})",
        exact.var(),
        est.var()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // General position: arbitrary means, sigmas and correlation.
    #[test]
    fn clark_matches_mc_general(
        ma in -20.0..20.0f64,
        sa in 0.05..5.0f64,
        mb in -20.0..20.0f64,
        sb in 0.05..5.0f64,
        rho in -0.95..0.95f64,
    ) {
        check_against_mc(Normal::new(ma, sa), Normal::new(mb, sb), rho)?;
    }

    // Near-equal means: the blending regime where the Clark mean and
    // variance corrections are largest and the result is least normal.
    #[test]
    fn clark_matches_mc_near_equal_means(
        mu in -10.0..10.0f64,
        delta in -0.01..0.01f64,
        sa in 0.1..3.0f64,
        sb in 0.1..3.0f64,
        rho in -0.9..0.9f64,
    ) {
        check_against_mc(Normal::new(mu, sa), Normal::new(mu + delta, sb), rho)?;
    }

    // Dominant operand: one input far above the other. The max must both
    // match Monte Carlo and collapse to the dominant operand's moments.
    #[test]
    fn clark_matches_mc_dominant_operand(
        mu in -10.0..10.0f64,
        gap in 50.0..200.0f64,
        sa in 0.1..3.0f64,
        sb in 0.1..3.0f64,
        rho in -0.9..0.9f64,
        a_dominates in any::<bool>(),
    ) {
        let (a, b) = if a_dominates {
            (Normal::new(mu + gap, sa), Normal::new(mu, sb))
        } else {
            (Normal::new(mu, sa), Normal::new(mu + gap, sb))
        };
        check_against_mc(a, b, rho)?;
        let exact = clark::max_correlated(a, b, rho);
        let dom = if a_dominates { a } else { b };
        prop_assert!((exact.mean() - dom.mean()).abs() <= 1e-6 * (1.0 + dom.mean().abs()));
        prop_assert!((exact.var() - dom.var()).abs() <= 1e-6 * (1.0 + dom.var()));
    }
}

/// `rho = 0` must reduce the correlated Clark max to the independent one
/// (exact algebraic identity, not a sampling question).
#[test]
fn correlated_max_at_rho_zero_matches_independent() {
    let cases = [
        (0.0, 1.0, 0.0, 1.0),
        (5.0, 0.5, 4.9, 0.7),
        (-3.0, 2.0, 3.0, 0.1),
    ];
    for (ma, sa, mb, sb) in cases {
        let a = Normal::new(ma, sa);
        let b = Normal::new(mb, sb);
        let ind = clark::max(a, b);
        let cor = clark::max_correlated(a, b, 0.0);
        assert!((ind.mean() - cor.mean()).abs() < 1e-12);
        assert!((ind.var() - cor.var()).abs() < 1e-12);
    }
}

/// Perfectly correlated equal-sigma operands: the max is exactly the
/// larger-mean operand, and the sampler must agree.
#[test]
fn perfectly_correlated_equal_sigma_collapses() {
    let a = Normal::new(1.0, 1.5);
    let b = Normal::new(2.0, 1.5);
    let exact = clark::max_correlated(a, b, 1.0);
    assert!((exact.mean() - 2.0).abs() < 1e-6);
    assert!((exact.var() - 2.25).abs() < 1e-4);
    let est = mc::max_moments_correlated(a, b, 1.0, SAMPLES, 99);
    assert!((est.mean() - 2.0).abs() < 6.0 * mean_se(1.5, SAMPLES));
}
