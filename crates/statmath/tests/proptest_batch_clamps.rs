//! Clamp-accounting half of the batched-kernel differential oracle: the
//! process-global variance-clamp counter must advance by exactly as
//! much under [`clark::max_batch`] as under the equivalent scalar
//! sequence — `sgs_report compare` treats `clark_var_clamps` as a
//! strict (bit-deterministic) metric, so over- or under-counting in the
//! batch kernel would trip the cross-run gate.
//!
//! Like `clamp_counter.rs`, this file holds a single test so the
//! process-global counter is only touched by the calls below (the other
//! batch properties live in `proptest_batch.rs` and may clamp
//! concurrently within *their* process).

use proptest::prelude::*;
use sgs_statmath::clark::{self, DEFAULT_EPS};
use sgs_statmath::Normal;

/// Operand domain as in `proptest_batch.rs`: sizing-realistic moments
/// plus near-degenerate variances that provoke the clamp.
fn lane() -> impl Strategy<Value = (f64, f64, f64, f64)> {
    (
        -50.0..200.0f64,
        prop_oneof![0.0..25.0f64, 1e-14..1e-9f64],
        -50.0..200.0f64,
        prop_oneof![0.0..25.0f64, 1e-14..1e-9f64],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn clamp_counter_matches_scalar_accounting(
        lanes in prop::collection::vec(lane(), 0..20),
    ) {
        let mu_a: Vec<f64> = lanes.iter().map(|l| l.0).collect();
        let var_a: Vec<f64> = lanes.iter().map(|l| l.1).collect();
        let mu_b: Vec<f64> = lanes.iter().map(|l| l.2).collect();
        let var_b: Vec<f64> = lanes.iter().map(|l| l.3).collect();

        let before_scalar = clark::var_clamp_count();
        for &(ma, va, mb, vb) in &lanes {
            let _ = clark::max_eps(
                Normal::from_mean_var(ma, va),
                Normal::from_mean_var(mb, vb),
                DEFAULT_EPS,
            );
        }
        let scalar_clamps = clark::var_clamp_count() - before_scalar;

        let mut out_mu = vec![0.0; lanes.len()];
        let mut out_var = vec![0.0; lanes.len()];
        let before_batch = clark::var_clamp_count();
        clark::max_batch(&mu_a, &var_a, &mu_b, &var_b, DEFAULT_EPS, &mut out_mu, &mut out_var);
        let batch_clamps = clark::var_clamp_count() - before_batch;

        prop_assert_eq!(batch_clamps, scalar_clamps);
        for v in &out_var {
            prop_assert!(*v >= 0.0, "clamped variance must be non-negative, got {}", v);
        }
    }
}
