//! Golden-file regression tests for the paper-style result tables.
//!
//! Each case sizes a fixed circuit under a fixed objective/constraint and
//! snapshots `(mu, sigma, area)` — the three columns of the paper's
//! Tables 1-3 — into `tests/golden/*.txt`. The solver is deterministic
//! (seeded circuits, bit-identical parallel assembly, no wall-clock
//! dependence in the iterates), so the snapshot is asserted to 1e-9:
//! any numerical drift in the statistical model, the formulation or the
//! solver shows up as a diff here before it shows up as a silently wrong
//! table.
//!
//! Regenerate intentionally with:
//!
//! ```text
//! REGEN_GOLDEN=1 cargo test -p sgs-core --test golden_tables
//! ```

use sgs_core::{DelaySpec, Objective, Sizer};
use sgs_netlist::generate::{self, RandomDagSpec};
use sgs_netlist::{Circuit, Library};
use std::fmt::Write as _;
use std::path::PathBuf;

const TOL: f64 = 1e-9;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn lib() -> Library {
    Library::paper_default()
}

fn small_dag() -> Circuit {
    generate::random_dag(&RandomDagSpec {
        name: "golden20".into(),
        cells: 20,
        inputs: 4,
        depth: 4,
        seed: 2000,
        ..Default::default()
    })
}

struct Case {
    label: &'static str,
    objective: Objective,
    spec: DelaySpec,
}

/// Solves every case and renders the table as `label mu sigma area` rows
/// with full-precision hex-independent decimal (17 significant digits
/// round-trips f64 exactly).
fn render(circuit: &Circuit, cases: &[Case]) -> String {
    let lb = lib();
    let mut out = String::new();
    for case in cases {
        let r = Sizer::new(circuit, &lb)
            .objective(case.objective.clone())
            .delay_spec(case.spec.clone())
            .solve()
            .unwrap_or_else(|e| panic!("{}: {e}", case.label));
        writeln!(
            out,
            "{} {:.17e} {:.17e} {:.17e}",
            case.label,
            r.delay.mean(),
            r.delay.sigma(),
            r.area
        )
        .unwrap();
    }
    out
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with REGEN_GOLDEN=1 to create it",
            path.display()
        )
    });
    let exp_lines: Vec<&str> = expected.lines().collect();
    let act_lines: Vec<&str> = actual.lines().collect();
    assert_eq!(
        exp_lines.len(),
        act_lines.len(),
        "{name}: row count changed"
    );
    for (e, a) in exp_lines.iter().zip(&act_lines) {
        let ef: Vec<&str> = e.split_whitespace().collect();
        let af: Vec<&str> = a.split_whitespace().collect();
        assert_eq!(ef[0], af[0], "{name}: row label changed");
        for (col, (ev, av)) in ef[1..].iter().zip(&af[1..]).enumerate() {
            let ev: f64 = ev.parse().unwrap();
            let av: f64 = av.parse().unwrap();
            assert!(
                (ev - av).abs() <= TOL * (1.0 + ev.abs()),
                "{name}, row {}, col {col}: golden {ev:.17e} vs actual {av:.17e}",
                ef[0]
            );
        }
    }
}

/// Table 2 shape: the balanced tree under the paper's tree-circuit
/// objectives (min mu, min mu + 3 sigma, min area at an exact mean).
#[test]
fn golden_tree7_table() {
    let c = generate::tree7();
    let cases = [
        Case {
            label: "min_mu",
            objective: Objective::MeanDelay,
            spec: DelaySpec::None,
        },
        Case {
            label: "min_mu_plus_3sigma",
            objective: Objective::MeanPlusKSigma(3.0),
            spec: DelaySpec::None,
        },
        Case {
            label: "min_area_exact_mu_7",
            objective: Objective::Area,
            spec: DelaySpec::ExactMean(7.0),
        },
        Case {
            label: "min_area_mu_le_8",
            objective: Objective::Area,
            spec: DelaySpec::MaxMean(8.0),
        },
    ];
    check_golden("tree7.txt", &render(&c, &cases));
}

/// Table 3 shape: a seeded random DAG under area/deadline trade-offs
/// including the statistical (mu + 3 sigma) deadline form.
#[test]
fn golden_random_dag_table() {
    let c = small_dag();
    let cases = [
        Case {
            label: "min_mu",
            objective: Objective::MeanDelay,
            spec: DelaySpec::None,
        },
        Case {
            label: "min_area_mu_le_14",
            objective: Objective::Area,
            spec: DelaySpec::MaxMean(14.0),
        },
        Case {
            label: "min_area_mu3sig_le_16",
            objective: Objective::Area,
            spec: DelaySpec::MaxMeanPlusKSigma { k: 3.0, d: 16.0 },
        },
    ];
    check_golden("random_dag20.txt", &render(&c, &cases));
}
