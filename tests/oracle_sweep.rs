//! Differential frontier oracle: the warm-swept frontier against
//! independent cold solves at the same deadlines, on tree7 and the
//! committed `benchmarks/rdag40.blif` netlist.
//!
//! The equivalence contract has two tiers (see `sgs_core::sweep`):
//!
//! * **Bitwise evaluation tier** — every point's reported `(mu, sigma,
//!   area)` is bit-identical to a from-scratch [`ssta`] + `sum(s)`
//!   evaluation at that point's accepted sizes
//!   ([`Frontier::verify_evaluation`]).
//! * **Solver tier** — an independent *cold* `Sizer` solve at the same
//!   spec agrees on feasibility and lands on the same frontier within a
//!   small relative area tolerance. Warm and cold runs are different
//!   iterates of the same NLP, so bit-equality is not expected here —
//!   only agreement of the optimum.
//!
//! The battery also pins the frontier-shape invariants (area
//! non-increasing as the deadline relaxes; the infeasible-to-feasible
//! transition happens exactly once per sweep) and the resolver's
//! infeasible-keeps-warm contract for walks that cross the feasibility
//! boundary.

use sgs_core::{DelaySpec, Frontier, Objective, Sizer, SweepConfig, SweepEngine};
use sgs_netlist::{blif, generate, Circuit, Library};
use sgs_ssta::ssta;
use std::path::PathBuf;

fn lib() -> Library {
    Library::paper_default()
}

fn rdag40() -> Circuit {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../benchmarks/rdag40.blif");
    let text = std::fs::read_to_string(&path).expect("committed benchmark netlist");
    blif::parse(&text).expect("rdag40.blif parses")
}

/// Cold-solve agreement at `sample` indices of the feasible segment, plus
/// the shape invariants and the bitwise tier, shared by both circuits.
fn check_against_cold(circuit: &Circuit, l: &Library, frontier: &Frontier, samples: &[usize]) {
    frontier.check_dominance(1e-6).expect("frontier dominance");
    frontier
        .verify_evaluation(circuit, l)
        .expect("bitwise evaluation tier");
    assert_eq!(
        frontier.transitions(),
        1,
        "the sweep crosses the feasibility boundary exactly once"
    );
    assert!(frontier.points.iter().any(|p| !p.feasible));
    let feasible: Vec<_> = frontier.points.iter().filter(|p| p.feasible).collect();
    for &idx in samples {
        let p = feasible[idx.min(feasible.len() - 1)];
        let cold = Sizer::new(circuit, l)
            .objective(Objective::Area)
            .delay_spec(DelaySpec::MaxMean(p.deadline))
            .solve()
            .expect("cold solve feasible wherever the warm sweep was");
        let rel = (cold.area - p.area).abs() / (1.0 + p.area.abs());
        assert!(
            rel <= 5e-3,
            "cold solve at deadline {} disagrees: warm area {}, cold {}",
            p.deadline,
            p.area,
            cold.area
        );
        // And the cold solve really met the spec, per a fresh analysis.
        let fresh = ssta(circuit, l, &cold.s);
        assert!(fresh.delay.mean() <= p.deadline + 1e-3 * (1.0 + p.deadline.abs()));
    }
}

#[test]
fn warm_frontier_matches_cold_solves_on_tree7() {
    let c = generate::tree7();
    let l = lib();
    let frontier = SweepEngine::new(&c, &l)
        .config(SweepConfig {
            points: 6,
            refine_max: 2,
            ..SweepConfig::default()
        })
        .deadline_frontier()
        .expect("tree7 sweep converges");
    let feasible = frontier.feasible_count();
    assert!(feasible >= 6, "got {feasible} feasible points");
    // Every feasible point cold-checked on the small circuit.
    let all: Vec<usize> = (0..feasible).collect();
    check_against_cold(&c, &l, &frontier, &all);
}

#[test]
fn warm_frontier_matches_cold_solves_on_rdag40() {
    let c = rdag40();
    let l = lib();
    // An explicit walk-order grid (fractions of the unsized baseline
    // delay, plus an infeasible tail probe) instead of the auto-derived
    // one: the minimum-delay anchor solve is expensive in debug builds
    // and the oracle's subject is the walk, not the grid derivation.
    let baseline = ssta(&c, &l, &vec![1.0; c.num_gates()]).delay.mean();
    // The 0.5 tail is decisively below anything the library can reach
    // (the achievable boundary itself is solver-path-dependent: gradual
    // warm walks get further than cold probes, so a near-boundary tail
    // would make the transition count flaky).
    let grid: Vec<f64> = [1.00, 0.95, 0.92, 0.89, 0.86, 0.50]
        .iter()
        .map(|f| baseline * f)
        .collect();
    let frontier = SweepEngine::new(&c, &l)
        .config(SweepConfig {
            refine_max: 1,
            ..SweepConfig::default()
        })
        .trace(&grid)
        .expect("rdag40 sweep converges");
    let feasible = frontier.feasible_count();
    assert!(feasible >= 5, "got {feasible} feasible points");
    assert!(
        frontier.warm_interior_fraction() >= 0.75,
        "interior points must re-solve warm"
    );
    // Cold solves are the expensive part — sample the loose end, the
    // middle and the tightest feasible point.
    check_against_cold(&c, &l, &frontier, &[0, feasible / 2, feasible - 1]);
}

#[test]
fn infeasible_point_keeps_the_last_accepted_warm_state() {
    let c = generate::tree7();
    let l = lib();
    let mut resolver = Sizer::new(&c, &l)
        .objective(Objective::Area)
        .delay_spec(DelaySpec::MaxMean(6.5))
        .resolver();
    let accepted = resolver.solve().expect("6.5 is feasible");

    // An impossible deadline: the solve is rejected...
    let err = resolver.resolve_spec(4.0);
    assert!(err.is_err(), "4.0 must be infeasible on tree7");

    // ...and the *last accepted* state still seeds the next solve: the
    // return to 6.5 is warm and re-verifies the old optimum in at most
    // one outer iteration.
    let back = resolver.resolve_spec(6.5).expect("6.5 is still feasible");
    assert!(back.warm_start_hit, "warm state lost across infeasibility");
    assert!(
        back.result.outer_iterations <= 1,
        "return to the accepted spec must re-verify, took {} outers",
        back.result.outer_iterations
    );
    let rel = (back.result.area - accepted.result.area).abs() / (1.0 + accepted.result.area);
    assert!(rel <= 1e-6, "area moved across the infeasible excursion");
}

#[test]
fn engine_walk_survives_a_mid_sweep_infeasible_excursion() {
    // The engine-level twin of the resolver regression above: a walk that
    // dips below the feasible region keeps warm-chaining afterwards.
    let c = generate::tree7();
    let l = lib();
    let engine = SweepEngine::new(&c, &l).config(SweepConfig {
        refine_max: 0,
        ..SweepConfig::default()
    });
    let frontier = engine.trace(&[6.8, 4.0, 6.5]).expect("anchor feasible");
    assert_eq!(frontier.points.len(), 3);
    assert_eq!(frontier.feasible_count(), 2);
    let tightest_feasible = frontier
        .points
        .iter()
        .find(|p| p.feasible)
        .expect("6.5 traced");
    assert!(
        tightest_feasible.warm_start_hit,
        "the post-excursion point must still re-solve warm"
    );
    frontier
        .check_dominance(1e-6)
        .expect("sorted walk dominance");
}
