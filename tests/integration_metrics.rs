//! Integration: the metrics registry end-to-end through the sizer.
//!
//! The contract under test (the acceptance criteria of the metrics
//! layer):
//!
//! * metrics are observation only — a solve with the registry enabled is
//!   bit-identical (iterates, objective, eval counts) to one with it
//!   disabled, which is the default state of every run without
//!   `--metrics`;
//! * the counters a solve leaves behind agree with the corresponding
//!   `SizingResult` fields — the snapshot is the result, not an estimate
//!   of it;
//! * the phase profile of an enabled run covers at least 95% of the
//!   measured wall clock, and the snapshot it produces passes the same
//!   `Snapshot::lint` gate CI applies to `--metrics` files, round-tripping
//!   through JSON byte-identically.
//!
//! The registry is process-global, so every test here serialises on one
//! mutex (the same discipline as the `sgs-metrics` unit tests).

use sgs_core::{Objective, Sizer, SolverChoice};
use sgs_metrics::{Counter, Gauge, Metadata, Snapshot};
use sgs_netlist::generate::{self, RandomDagSpec};
use sgs_netlist::{Circuit, Library};
use std::sync::Mutex;
use std::time::Instant;

static LOCK: Mutex<()> = Mutex::new(());

fn lib() -> Library {
    Library::paper_default()
}

fn dag(cells: usize, seed: u64) -> Circuit {
    generate::random_dag(&RandomDagSpec {
        name: format!("metrics{cells}"),
        cells,
        inputs: 4,
        depth: 4,
        seed,
        ..Default::default()
    })
}

#[test]
fn enabled_metrics_solve_is_bit_identical_to_disabled() {
    let _g = LOCK.lock().unwrap();
    let lb = lib();
    for (c, solver) in [
        (generate::tree7(), SolverChoice::FullSpace),
        (dag(14, 99), SolverChoice::FullSpace),
        (generate::tree7(), SolverChoice::ReducedSpace),
    ] {
        let base = Sizer::new(&c, &lb)
            .objective(Objective::MeanPlusKSigma(3.0))
            .solver(solver);

        sgs_metrics::disable();
        let plain = base.clone().solve().expect("metrics-off solve");

        sgs_metrics::reset();
        sgs_metrics::enable();
        let metered = base.solve().expect("metrics-on solve");
        sgs_metrics::disable();

        let pb: Vec<u64> = plain.s.iter().map(|v| v.to_bits()).collect();
        let mb: Vec<u64> = metered.s.iter().map(|v| v.to_bits()).collect();
        assert_eq!(pb, mb, "iterates must be bit-identical");
        assert_eq!(plain.objective.to_bits(), metered.objective.to_bits());
        assert_eq!(plain.outer_iterations, metered.outer_iterations);
        assert_eq!(plain.inner_iterations, metered.inner_iterations);
        assert_eq!(plain.evals, metered.evals, "evaluation counts unchanged");
    }
}

#[test]
fn counters_agree_with_the_sizing_result() {
    let _g = LOCK.lock().unwrap();
    sgs_metrics::reset();
    sgs_metrics::enable();
    let c = dag(20, 7);
    let r = Sizer::new(&c, &lib())
        .objective(Objective::MeanPlusKSigma(3.0))
        .solver(SolverChoice::FullSpace)
        .solve()
        .expect("metered sizing converges");
    let get = sgs_metrics::counter_value;
    let restarts = get(Counter::SizerRestarts);
    let fallbacks = get(Counter::SizerGreedyFallbacks);
    sgs_metrics::disable();

    assert_eq!(get(Counter::SizerSolves), 1);
    assert_eq!(get(Counter::ClarkVarClamps), r.clark_var_clamps);

    // Counters accumulate over every attempt of the recovery ladder; the
    // result reports the successful one. With no restart or fallback the
    // two views must agree exactly.
    assert!(get(Counter::NlpSolves) >= 1);
    assert!(get(Counter::NlpOuterIterations) >= r.outer_iterations as u64);
    assert!(get(Counter::NlpEvalsObjective) >= r.evals.objective as u64);
    if restarts == 0 && fallbacks == 0 {
        assert_eq!(get(Counter::NlpOuterIterations), r.outer_iterations as u64);
        assert_eq!(get(Counter::NlpInnerIterations), r.inner_iterations as u64);
        assert_eq!(get(Counter::NlpEvalsObjective), r.evals.objective as u64);
        assert_eq!(get(Counter::NlpEvalsGradient), r.evals.gradient as u64);
        assert_eq!(
            get(Counter::NlpEvalsConstraints),
            r.evals.constraints as u64
        );
        assert_eq!(get(Counter::NlpEvalsJacobian), r.evals.jacobian as u64);
        assert_eq!(get(Counter::NlpEvalsHessian), r.evals.hessian as u64);
    }

    // Each outer iteration is timed exactly once.
    let outer_hist = sgs_metrics::hist_snapshot(sgs_metrics::HistId::NlpOuterSeconds);
    assert_eq!(outer_hist.count, get(Counter::NlpOuterIterations));
}

#[test]
fn profile_covers_the_wall_clock_and_snapshot_survives_the_lint_gate() {
    let _g = LOCK.lock().unwrap();
    sgs_metrics::reset();
    sgs_metrics::enable();
    let c = dag(40, 11);
    let t0 = Instant::now();
    Sizer::new(&c, &lib())
        .objective(Objective::MeanPlusKSigma(3.0))
        .solve()
        .expect("metered sizing converges");
    sgs_metrics::set_gauge(Gauge::RunSeconds, t0.elapsed().as_secs_f64());
    let snap = sgs_metrics::snapshot(Metadata {
        bin: "integration_metrics".into(),
        circuit: c.name().to_string(),
        git_sha: "test".into(),
        threads: 1,
        timestamp: "0".into(),
    });
    sgs_metrics::disable();

    let coverage = snap.coverage().expect("run_seconds gauge is set");
    assert!(
        coverage >= 0.95,
        "root phases cover {:.1}% of the wall clock",
        coverage * 100.0
    );
    assert!(coverage <= 1.0 + 1e-6, "coverage {coverage} over 100%");

    // The in-process snapshot passes the same structural gate as files.
    // (Struct equality is no use here: untouched histograms have NaN
    // quantiles, and NaN != NaN — byte-identity of the serialised form is
    // the stronger, NaN-proof statement.)
    let text = snap.to_json();
    let relinted = Snapshot::lint(&text).expect("snapshot passes lint");
    assert_eq!(relinted.to_json(), text, "round trip is byte-identical");
}
