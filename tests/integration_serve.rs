//! Differential oracle: the daemon is a transport, not a second engine.
//!
//! Every number the served API returns must be **bit-identical**
//! (`f64::to_bits`) to what a direct in-process [`sgs_core::Resolver`]
//! produces for the same operation sequence. The server formats floats
//! in Rust's shortest-round-trip form and the client parses them back
//! with `str::parse::<f64>`, so equality of parsed bits is exact — any
//! divergence means the daemon solved a different problem, ran ops in a
//! different order, or lost precision on the wire.
//!
//! Two scenarios cover both spec families:
//!
//! * a generated DAG under `area` / `max_mean`, driven through the full
//!   op set: cold solve → two what-if probes → warm deadline move →
//!   pinned-size re-solve → warm move back to the original deadline;
//! * `tree7` under `mean_plus_k_sigma` / `max_mean_plus_k_sigma`
//!   (the k-sigma formulation), driven through solve → what-if →
//!   deadline move.
//!
//! The mirror reproduces the session worker's dispatch rules exactly —
//! in particular that a `/solve` whose deadline differs from the
//! session's current deadline becomes a warm `resolve_spec` move, and
//! that a *failed* move still leaves the engine at the moved deadline.

use sgs_core::{DelaySpec, Objective, ResolveOutcome, Resolver, Sizer, WhatIfReport};
use sgs_netlist::{generate, GateId, Library};
use sgs_serve::{Client, Server, ServerConfig};
use sgs_ssta::ssta;
use sgs_trace::json::{parse_json, Json};

fn bits(v: &Json, key: &str) -> u64 {
    v.get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing numeric {key:?}"))
        .to_bits()
}

fn int(v: &Json, key: &str) -> usize {
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let n = v
        .get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing integer {key:?}")) as usize;
    n
}

fn boolean(v: &Json, key: &str) -> bool {
    match v.get(key) {
        Some(Json::Bool(b)) => *b,
        other => panic!("missing boolean {key:?}: {other:?}"),
    }
}

/// Field-by-field bit comparison of a served `solve_result` against a
/// direct [`ResolveOutcome`].
fn assert_solve_matches(body: &str, direct: &ResolveOutcome, what: &str) {
    let v = parse_json(body.trim()).unwrap_or_else(|e| panic!("{what}: bad body {body}: {e}"));
    assert_eq!(
        v.get("event").and_then(Json::as_str),
        Some("solve_result"),
        "{what}: {body}"
    );
    let r = &direct.result;
    assert_eq!(
        bits(&v, "objective"),
        r.objective.to_bits(),
        "{what}: objective"
    );
    assert_eq!(bits(&v, "area"), r.area.to_bits(), "{what}: area");
    assert_eq!(bits(&v, "mu"), r.delay.mean().to_bits(), "{what}: mu");
    assert_eq!(
        bits(&v, "sigma"),
        r.delay.sigma().to_bits(),
        "{what}: sigma"
    );
    assert_eq!(
        int(&v, "outer_iterations"),
        r.outer_iterations,
        "{what}: outer iterations"
    );
    assert_eq!(
        int(&v, "inner_iterations"),
        r.inner_iterations,
        "{what}: inner iterations"
    );
    assert_eq!(
        boolean(&v, "warm_start_hit"),
        direct.warm_start_hit,
        "{what}: warm-start flag"
    );
    assert_eq!(
        int(&v, "gates_recomputed"),
        direct.gates_recomputed,
        "{what}: gates recomputed"
    );
    let Some(Json::Arr(sizes)) = v.get("sizes") else {
        panic!("{what}: missing sizes array: {body}");
    };
    assert_eq!(sizes.len(), r.s.len(), "{what}: sizes length");
    for (i, (got, want)) in sizes.iter().zip(&r.s).enumerate() {
        let got = got
            .as_f64()
            .unwrap_or_else(|| panic!("{what}: sizes[{i}] not a number"));
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "{what}: sizes[{i}] {got} vs {want}"
        );
    }
}

/// Field-by-field bit comparison of a served `what_if_result` against a
/// direct [`WhatIfReport`].
fn assert_what_if_matches(body: &str, direct: &WhatIfReport, what: &str) {
    let v = parse_json(body.trim()).unwrap_or_else(|e| panic!("{what}: bad body {body}: {e}"));
    assert_eq!(
        v.get("event").and_then(Json::as_str),
        Some("what_if_result"),
        "{what}: {body}"
    );
    assert_eq!(bits(&v, "mu"), direct.delay.mean().to_bits(), "{what}: mu");
    assert_eq!(
        bits(&v, "sigma"),
        direct.delay.sigma().to_bits(),
        "{what}: sigma"
    );
    assert_eq!(
        bits(&v, "objective"),
        direct.objective.to_bits(),
        "{what}: objective"
    );
    assert_eq!(
        bits(&v, "spec_violation"),
        direct.spec_violation.to_bits(),
        "{what}: spec violation"
    );
    assert_eq!(
        int(&v, "gates_recomputed"),
        direct.stats.gates_recomputed,
        "{what}: gates recomputed"
    );
}

fn post_ok(c: &mut Client, path: &str, body: &str) -> String {
    let resp = c
        .post(path, body)
        .unwrap_or_else(|e| panic!("POST {path}: {e}"));
    assert_eq!(resp.status, 200, "POST {path} {body}: {}", resp.body);
    resp.body
}

/// Renders a `(gate, size)` list in the wire `changes`/`sizes` form.
fn changes_json(changes: &[(GateId, f64)]) -> String {
    let mut s = String::from("[");
    for (i, (g, v)) in changes.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("{{\"gate\":{},\"size\":{v}}}", g.index()));
    }
    s.push(']');
    s
}

#[test]
fn served_area_max_mean_sequence_is_bit_identical_to_direct() {
    let dag = generate::RandomDagSpec {
        name: "oracle".into(),
        cells: 20,
        inputs: 5,
        depth: 4,
        seed: 11,
        ..Default::default()
    };
    let circuit = generate::random_dag(&dag);
    let lib = Library::paper_default();
    let baseline = ssta(&circuit, &lib, &vec![1.0; circuit.num_gates()])
        .delay
        .mean();
    let d0 = baseline * 0.97;
    let d1 = baseline * 0.95;

    // Direct mirror of the session worker: same formulation, same ops.
    let mut direct: Resolver<'_> = Sizer::new(&circuit, &lib)
        .objective(Objective::Area)
        .delay_spec(DelaySpec::MaxMean(d0))
        .resolver();

    let probe1 = [(GateId(1), 2.25), (GateId(4), 1.5)];
    let probe2 = [(GateId(0), 3.0)];
    let pins = [(GateId(2), 2.0)];

    let server = Server::start(ServerConfig::default(), None).expect("bind");
    let mut c = Client::connect(server.addr()).expect("connect");
    let base = format!(
        "\"circuit\":{{\"generate\":{{\"name\":\"oracle\",\"cells\":20,\"inputs\":5,\"depth\":4,\"seed\":11}}}},\"objective\":\"area\",\"spec\":{{\"max_mean\":{d0}}}"
    );

    // 1. Cold solve (request deadline == session deadline → plain solve).
    let body = post_ok(&mut c, "/solve", &format!("{{{base}}}"));
    assert_solve_matches(&body, &direct.solve().expect("direct solve"), "cold solve");

    // 2-3. Evaluation-only probes (these move the working point; the
    // mirror must move identically).
    for (i, probe) in [&probe1[..], &probe2[..]].into_iter().enumerate() {
        let body = post_ok(
            &mut c,
            "/what_if",
            &format!("{{{base},\"changes\":{}}}", changes_json(probe)),
        );
        assert_what_if_matches(&body, &direct.what_if(probe), &format!("probe {i}"));
    }

    // 4. Warm deadline move.
    let body = post_ok(&mut c, "/resolve", &format!("{{{base},\"deadline\":{d1}}}"));
    assert_solve_matches(
        &body,
        &direct.resolve_spec(d1).expect("direct deadline move"),
        "deadline move",
    );

    // 5. Pinned-size re-solve.
    let body = post_ok(
        &mut c,
        "/resolve",
        &format!("{{{base},\"sizes\":{}}}", changes_json(&pins)),
    );
    assert_solve_matches(
        &body,
        &direct.resolve_sizes(&pins).expect("direct pinned re-solve"),
        "pinned re-solve",
    );

    // 6. `/solve` at the original deadline: the session sits at `d1`, so
    // this is a warm move back — not a plain solve.
    let body = post_ok(&mut c, "/solve", &format!("{{{base}}}"));
    assert_solve_matches(
        &body,
        &direct.resolve_spec(d0).expect("direct move back"),
        "move back",
    );

    server.shutdown();
}

#[test]
fn served_k_sigma_sequence_is_bit_identical_to_direct() {
    let circuit = generate::tree7();
    let lib = Library::paper_default();
    let report = ssta(&circuit, &lib, &vec![1.0; circuit.num_gates()]);
    let k = 3.0;
    let d0 = (report.delay.mean() + k * report.delay.sigma()) * 0.97;
    let d1 = (report.delay.mean() + k * report.delay.sigma()) * 0.95;

    let mut direct: Resolver<'_> = Sizer::new(&circuit, &lib)
        .objective(Objective::MeanPlusKSigma(k))
        .delay_spec(DelaySpec::MaxMeanPlusKSigma { k, d: d0 })
        .resolver();

    let server = Server::start(ServerConfig::default(), None).expect("bind");
    let mut c = Client::connect(server.addr()).expect("connect");
    let base = format!(
        "\"circuit\":{{\"builtin\":\"tree7\"}},\"objective\":{{\"mean_plus_k_sigma\":{k}}},\"spec\":{{\"max_mean_plus_k_sigma\":{{\"k\":{k},\"d\":{d0}}}}}"
    );

    let body = post_ok(&mut c, "/solve", &format!("{{{base}}}"));
    assert_solve_matches(
        &body,
        &direct.solve().expect("direct solve"),
        "k-sigma solve",
    );

    let probe = [(GateId(3), 1.75)];
    let body = post_ok(
        &mut c,
        "/what_if",
        &format!("{{{base},\"changes\":{}}}", changes_json(&probe)),
    );
    assert_what_if_matches(&body, &direct.what_if(&probe), "k-sigma probe");

    let body = post_ok(&mut c, "/resolve", &format!("{{{base},\"deadline\":{d1}}}"));
    assert_solve_matches(
        &body,
        &direct.resolve_spec(d1).expect("direct k-sigma move"),
        "k-sigma deadline move",
    );

    server.shutdown();
}

#[test]
fn served_analyze_is_bit_identical_to_direct() {
    // `/analyze` is stateless; its summary must agree with a direct
    // analyzer run over the identical formulation.
    let server = Server::start(ServerConfig::default(), None).expect("bind");
    let mut c = Client::connect(server.addr()).expect("connect");
    let body = post_ok(
        &mut c,
        "/analyze",
        r#"{"circuit":{"builtin":"tree7"},"objective":"area","spec":{"max_mean":9.0}}"#,
    );
    let v = parse_json(body.trim()).expect("analyze body parses");
    assert_eq!(
        v.get("event").and_then(Json::as_str),
        Some("analyze_result")
    );

    let circuit = generate::tree7();
    let lib = Library::paper_default();
    let report = sgs_analyze::analyze(
        &circuit,
        &lib,
        &Objective::Area,
        &DelaySpec::MaxMean(9.0),
        &sgs_analyze::AnalyzerOptions::default(),
    );
    assert_eq!(
        v.get("clean"),
        Some(&Json::Bool(report.is_clean())),
        "clean flag"
    );
    assert_eq!(int(&v, "errors"), report.num_errors(), "error count");
    assert_eq!(int(&v, "warnings"), report.num_warnings(), "warning count");
    let Some(Json::Arr(diags)) = v.get("diagnostics") else {
        panic!("missing diagnostics array: {body}");
    };
    assert_eq!(diags.len(), report.diagnostics.len(), "diagnostic count");

    server.shutdown();
}

#[test]
fn failed_deadline_move_leaves_both_engines_in_the_same_state() {
    // A deliberately infeasible move must fail on both sides — and the
    // *next* answer must still agree bit-for-bit, pinning the documented
    // semantics that a rejected move leaves the engine at the moved
    // deadline with the last accepted warm start intact.
    let circuit = generate::tree7();
    let lib = Library::paper_default();
    let baseline = ssta(&circuit, &lib, &vec![1.0; circuit.num_gates()])
        .delay
        .mean();
    let d0 = baseline * 0.97;

    let mut direct: Resolver<'_> = Sizer::new(&circuit, &lib)
        .objective(Objective::Area)
        .delay_spec(DelaySpec::MaxMean(d0))
        .resolver();

    let server = Server::start(ServerConfig::default(), None).expect("bind");
    let mut c = Client::connect(server.addr()).expect("connect");
    let base = format!(
        "\"circuit\":{{\"builtin\":\"tree7\"}},\"objective\":\"area\",\"spec\":{{\"max_mean\":{d0}}}"
    );

    let body = post_ok(&mut c, "/solve", &format!("{{{base}}}"));
    assert_solve_matches(
        &body,
        &direct.solve().expect("direct solve"),
        "feasible solve",
    );

    // Both sides reject the impossible deadline.
    let resp = c
        .post("/resolve", &format!("{{{base},\"deadline\":1e-6}}"))
        .expect("infeasible resolve answered");
    assert_eq!(resp.status, 422, "body: {}", resp.body);
    assert!(direct.resolve_spec(1e-6).is_err(), "direct must reject too");

    // Recovery: move back to the feasible deadline on both sides.
    let body = post_ok(&mut c, "/solve", &format!("{{{base}}}"));
    assert_solve_matches(
        &body,
        &direct.resolve_spec(d0).expect("direct recovery"),
        "recovery after rejected move",
    );

    server.shutdown();
}
