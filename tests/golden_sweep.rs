//! Golden-file regression for the rdag40 area-vs-deadline frontier.
//!
//! Traces a fixed-grid frontier on the committed
//! `benchmarks/rdag40.blif` netlist through the warm-chained sweep
//! engine and snapshots the feasible points (deadline, area, mu, sigma
//! at 17 significant digits) into `tests/golden/sweep_rdag40.txt`,
//! asserted to 1e-9: any drift in the solver trajectory, the warm-start
//! carry or the incremental-engine sync shows up as a diff here.
//!
//! The fixed grid (instead of the auto-derived one) keeps the table
//! independent of the minimum-delay anchor solve. Regenerate
//! intentionally with:
//!
//! ```text
//! REGEN_GOLDEN=1 cargo test -p sgs-core --test golden_sweep
//! ```

use sgs_core::{SweepConfig, SweepEngine};
use sgs_netlist::{blif, Library};
use std::fmt::Write as _;
use std::path::PathBuf;

const TOL: f64 = 1e-9;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with REGEN_GOLDEN=1 to create it",
            path.display()
        )
    });
    let exp_lines: Vec<&str> = expected.lines().collect();
    let act_lines: Vec<&str> = actual.lines().collect();
    assert_eq!(
        exp_lines.len(),
        act_lines.len(),
        "{name}: row count changed"
    );
    for (e, a) in exp_lines.iter().zip(&act_lines) {
        if e.starts_with('#') {
            assert_eq!(e, a, "{name}: header changed");
            continue;
        }
        let ef: Vec<&str> = e.split_whitespace().collect();
        let af: Vec<&str> = a.split_whitespace().collect();
        assert_eq!(ef[0], af[0], "{name}: row label changed");
        for (col, (ev, av)) in ef[1..].iter().zip(&af[1..]).enumerate() {
            let ev: f64 = ev.parse().unwrap();
            let av: f64 = av.parse().unwrap();
            assert!(
                (ev - av).abs() <= TOL * (1.0 + ev.abs()),
                "{name}, row {}, col {col}: golden {ev:.17e} vs actual {av:.17e}",
                ef[0]
            );
        }
    }
}

#[test]
fn golden_sweep_rdag40_frontier() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../benchmarks/rdag40.blif");
    let text = std::fs::read_to_string(&path).expect("committed benchmark netlist");
    let circuit = blif::parse(&text).expect("rdag40.blif parses");
    let lib = Library::paper_default();

    // Fixed walk-order grid: fractions of the unsized baseline delay,
    // matching the warm re-solve demo in the what-if bench.
    let baseline = sgs_ssta::ssta(&circuit, &lib, &vec![1.0; circuit.num_gates()])
        .delay
        .mean();
    let grid: Vec<f64> = [1.00, 0.97, 0.95, 0.92, 0.89, 0.86]
        .iter()
        .map(|f| baseline * f)
        .collect();
    let frontier = SweepEngine::new(&circuit, &lib)
        .config(SweepConfig {
            refine_max: 0,
            infeasible_margin: 0.0,
            ..SweepConfig::default()
        })
        .trace(&grid)
        .expect("rdag40 fixed-grid sweep converges");
    assert_eq!(
        frontier.feasible_count(),
        grid.len(),
        "grid must be feasible"
    );
    frontier.check_dominance(1e-6).expect("frontier dominance");

    let mut out = String::new();
    writeln!(
        out,
        "# sweep circuit {} gates {} points {} feasible {}",
        circuit.name(),
        circuit.num_gates(),
        frontier.points.len(),
        frontier.feasible_count()
    )
    .unwrap();
    writeln!(out, "# columns: deadline area mu sigma").unwrap();
    for (i, p) in frontier.points.iter().filter(|p| p.feasible).enumerate() {
        writeln!(
            out,
            "point_{i:02}  {:+.17e}  {:+.17e}  {:+.17e}  {:+.17e}",
            p.deadline, p.area, p.mu, p.sigma
        )
        .unwrap();
    }
    check_golden("sweep_rdag40.txt", &out);
}
