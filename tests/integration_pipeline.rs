//! Integration: the full pipeline netlist -> SSTA -> sizing NLP -> solver
//! -> extraction, across circuit families and solver paths.

use sgs_core::{DelaySpec, Objective, SizeError, Sizer, SolverChoice};
use sgs_netlist::generate::{self, RandomDagSpec};
use sgs_netlist::{blif, Library};
use sgs_ssta::ssta;

fn lib() -> Library {
    Library::paper_default()
}

#[test]
fn blif_roundtrip_preserves_sizing_results() {
    // Serialise a circuit to BLIF, parse it back, and check the sizing
    // outcome is identical — I/O must not change the problem.
    let original = generate::tree7();
    let parsed = blif::parse(&blif::to_blif(&original)).expect("roundtrip parses");
    let a = Sizer::new(&original, &lib()).solve().expect("sizes");
    let b = Sizer::new(&parsed, &lib()).solve().expect("sizes");
    assert!((a.delay.mean() - b.delay.mean()).abs() < 1e-9);
    assert!((a.area - b.area).abs() < 1e-9);
}

#[test]
fn sizing_result_is_consistent_with_fresh_ssta() {
    let circuit = generate::ripple_carry_adder(6);
    let r = Sizer::new(&circuit, &lib())
        .objective(Objective::MeanPlusKSigma(1.0))
        .solve()
        .expect("sizes");
    let fresh = ssta(&circuit, &lib(), &r.s);
    assert!((fresh.delay.mean() - r.delay.mean()).abs() < 1e-12);
    assert!((fresh.delay.sigma() - r.delay.sigma()).abs() < 1e-12);
    assert!((r.area - r.s.iter().sum::<f64>()).abs() < 1e-12);
}

#[test]
fn speed_factors_respect_bounds_everywhere() {
    let circuit = generate::random_dag(&RandomDagSpec {
        name: "bounds".into(),
        cells: 150,
        inputs: 15,
        depth: 12,
        seed: 17,
        ..Default::default()
    });
    for obj in [
        Objective::MeanDelay,
        Objective::MeanPlusKSigma(3.0),
        Objective::Area,
    ] {
        let r = Sizer::new(&circuit, &lib())
            .objective(obj)
            .solver(SolverChoice::ReducedSpace)
            .solve()
            .expect("sizes");
        for &s in &r.s {
            assert!(
                (1.0 - 1e-9..=3.0 + 1e-9).contains(&s),
                "S = {s} out of bounds"
            );
        }
    }
}

#[test]
fn full_space_never_loses_to_warm_start() {
    // The Sizer picks the better of (reduced warm start, full-space
    // polish); the reported objective must therefore never be worse than
    // a pure reduced-space run.
    let circuit = generate::nand_tree(4);
    for obj in [Objective::MeanDelay, Objective::MeanPlusKSigma(3.0)] {
        let full = Sizer::new(&circuit, &lib())
            .objective(obj.clone())
            .solve()
            .expect("sizes");
        let red = Sizer::new(&circuit, &lib())
            .objective(obj)
            .solver(SolverChoice::ReducedSpace)
            .solve()
            .expect("sizes");
        assert!(full.objective <= red.objective + 1e-6);
    }
}

#[test]
fn infeasible_deadline_is_reported() {
    // A deadline below the fully-sized delay cannot be met.
    let circuit = generate::tree7();
    let fastest = Sizer::new(&circuit, &lib())
        .objective(Objective::MeanDelay)
        .solve()
        .expect("sizes")
        .delay
        .mean();
    let err = Sizer::new(&circuit, &lib())
        .objective(Objective::Area)
        .delay_spec(DelaySpec::MaxMean(fastest * 0.8))
        .solve();
    assert!(
        matches!(err, Err(SizeError::SolverFailed { .. })),
        "{err:?}"
    );
}

#[test]
fn chains_trees_and_adders_all_size() {
    for circuit in [
        generate::inverter_chain(12),
        generate::nand_tree(3),
        generate::ripple_carry_adder(4),
        generate::fig2(),
    ] {
        let r = Sizer::new(&circuit, &lib()).solve().expect("sizes");
        let baseline = ssta(&circuit, &lib(), &vec![1.0; circuit.num_gates()]);
        assert!(
            r.delay.mean() < baseline.delay.mean(),
            "{}: no speedup",
            circuit.name()
        );
    }
}

#[test]
fn weighted_area_prefers_cheap_gates() {
    // Penalise sizing gate G (the output gate) heavily; the optimiser
    // should shift effort to other gates relative to uniform weights.
    let circuit = generate::tree7();
    let d = 6.0;
    let uniform = Sizer::new(&circuit, &lib())
        .objective(Objective::Area)
        .delay_spec(DelaySpec::MaxMean(d))
        .solve()
        .expect("sizes");
    let mut w = vec![1.0; 7];
    w[6] = 25.0; // G
    let weighted = Sizer::new(&circuit, &lib())
        .objective(Objective::WeightedArea(w))
        .delay_spec(DelaySpec::MaxMean(d))
        .solve()
        .expect("sizes");
    assert!(
        weighted.s[6] < uniform.s[6] - 0.05,
        "S_G: weighted {} vs uniform {}",
        weighted.s[6],
        uniform.s[6]
    );
    assert!(weighted.delay.mean() <= d + 1e-2);
}

#[test]
fn deterministic_results_across_runs() {
    let circuit = generate::ripple_carry_adder(3);
    let a = Sizer::new(&circuit, &lib()).solve().expect("sizes");
    let b = Sizer::new(&circuit, &lib()).solve().expect("sizes");
    assert_eq!(a.s, b.s);
}

#[test]
fn custom_initial_point_converges_to_same_optimum() {
    let circuit = generate::tree7();
    let from_ones = Sizer::new(&circuit, &lib()).solve().expect("sizes");
    let from_threes = Sizer::new(&circuit, &lib())
        .initial_s(vec![3.0; 7])
        .solve()
        .expect("sizes");
    assert!(
        (from_ones.delay.mean() - from_threes.delay.mean()).abs() < 5e-3,
        "{} vs {}",
        from_ones.delay.mean(),
        from_threes.delay.mean()
    );
}

#[test]
fn per_output_deadlines_hold_individually() {
    // Give the adder's MSB sum a tight deadline and everything else a
    // loose one; the sizer must speed up exactly the paths that need it.
    let circuit = generate::ripple_carry_adder(5);
    let l = lib();
    let baseline = ssta(&circuit, &l, &vec![1.0; circuit.num_gates()]);
    let n_out = circuit.outputs().len();
    // Outputs are sum0..sum4, cout (in marking order); constrain each to
    // 97% of its own unsized arrival, except the last sum which gets 85%.
    let d: Vec<f64> = circuit
        .outputs()
        .iter()
        .enumerate()
        .map(|(i, &o)| {
            let a = baseline.arrivals[o.index()].mean();
            if i == n_out - 2 {
                a * 0.85
            } else {
                a * 0.97
            }
        })
        .collect();
    let r = Sizer::new(&circuit, &l)
        .objective(Objective::Area)
        .delay_spec(DelaySpec::PerOutput {
            k: 0.0,
            d: d.clone(),
        })
        .solve()
        .expect("sizes");
    let after = ssta(&circuit, &l, &r.s);
    for (i, (&o, &d_o)) in circuit.outputs().iter().zip(&d).enumerate() {
        assert!(
            after.arrivals[o.index()].mean() <= d_o + 1e-2,
            "output {i}: {} > {d_o}",
            after.arrivals[o.index()].mean()
        );
    }
    // The sizing is selective: area well below full sizing.
    assert!(r.area < 1.5 * circuit.num_gates() as f64);
}

#[test]
fn per_output_with_sigma_margin() {
    let circuit = generate::nand_tree(3);
    let l = lib();
    let baseline = ssta(&circuit, &l, &vec![1.0; circuit.num_gates()]);
    let d = vec![baseline.delay.mean_plus_k_sigma(3.0) * 0.9];
    let r = Sizer::new(&circuit, &l)
        .objective(Objective::Area)
        .delay_spec(DelaySpec::PerOutput {
            k: 3.0,
            d: d.clone(),
        })
        .solve()
        .expect("sizes");
    assert!(r.mean_plus_k_sigma(3.0) <= d[0] + 1e-2);
}
