//! Integration: the qualitative results ("shapes") of the paper's three
//! tables must hold on our calibrated library and circuits.

use sgs_core::{DelaySpec, Objective, Sizer, SolverChoice};
use sgs_netlist::{generate, Library};
use sgs_ssta::ssta;

fn lib() -> Library {
    Library::paper_default()
}

/// Table 2 anchors: the tree circuit's delay range brackets the paper's
/// pinned means and the endpoints land near the paper's values.
#[test]
fn table2_range_matches_paper() {
    let c = generate::tree7();
    let slow = ssta(&c, &lib(), &[1.0; 7]).delay;
    let fast = Sizer::new(&c, &lib())
        .objective(Objective::MeanDelay)
        .solve()
        .expect("sizes");
    // Paper: baseline (7.4, 0.811, area 7), fully sized (5.4, 0.592, 21).
    assert!(
        (slow.mean() - 7.4).abs() < 0.25,
        "baseline mu {}",
        slow.mean()
    );
    assert!(
        (slow.sigma() - 0.811).abs() < 0.1,
        "baseline sigma {}",
        slow.sigma()
    );
    assert!(
        (fast.delay.mean() - 5.4).abs() < 0.25,
        "sized mu {}",
        fast.delay.mean()
    );
    assert!((fast.area - 21.0).abs() < 1.0, "sized area {}", fast.area);
}

/// Table 2: at every pinned mean, sigma(min) <= sigma(min area) <=
/// sigma(max), with a strictly positive interval, and shaping sigma costs
/// area.
#[test]
fn table2_sigma_intervals() {
    let c = generate::tree7();
    let mut widths = Vec::new();
    for pin in [5.8, 6.5, 7.2] {
        let spec = DelaySpec::ExactMean(pin);
        let area = Sizer::new(&c, &lib())
            .objective(Objective::Area)
            .delay_spec(spec.clone())
            .solve()
            .expect("sizes");
        let lo = Sizer::new(&c, &lib())
            .objective(Objective::Sigma)
            .delay_spec(spec.clone())
            .solve()
            .expect("sizes");
        let hi = Sizer::new(&c, &lib())
            .objective(Objective::NegSigma)
            .delay_spec(spec.clone())
            .solve()
            .expect("sizes");
        for r in [&area, &lo, &hi] {
            assert!((r.delay.mean() - pin).abs() < 8e-3, "pin {pin} broken");
        }
        assert!(lo.delay.sigma() <= area.delay.sigma() + 1e-3);
        assert!(area.delay.sigma() <= hi.delay.sigma() + 1e-3);
        assert!(
            hi.delay.sigma() - lo.delay.sigma() > 0.02,
            "interval at {pin} collapsed"
        );
        // Minimal sigma costs more area than minimal area (paper's
        // explicit observation).
        assert!(lo.area > area.area - 1e-3);
        widths.push(hi.delay.sigma() - lo.delay.sigma());
    }
    // Paper: the interval is largest for the middle pin.
    assert!(
        widths[1] > widths[0] - 5e-3,
        "middle not widest: {widths:?}"
    );
    assert!(
        widths[1] > widths[2] - 5e-3,
        "middle not widest: {widths:?}"
    );
}

/// Table 3: symmetric gates get identical speed factors and the output
/// gate is maximal under the min-sigma objective.
#[test]
fn table3_symmetry_groups() {
    let c = generate::tree7();
    for obj in [Objective::Area, Objective::Sigma] {
        let r = Sizer::new(&c, &lib())
            .objective(obj.clone())
            .delay_spec(DelaySpec::ExactMean(6.5))
            .solve()
            .expect("sizes");
        let s = &r.s; // A B C D E F G
        let tol = 0.02;
        // {A, B, D, E} identical.
        for &(i, j) in &[(0usize, 1usize), (0, 3), (0, 4)] {
            assert!(
                (s[i] - s[j]).abs() < tol,
                "{obj}: S{i} {} vs S{j} {}",
                s[i],
                s[j]
            );
        }
        // {C, F} identical.
        assert!((s[2] - s[5]).abs() < tol, "{obj}: C {} vs F {}", s[2], s[5]);
        // Output gate maximal.
        let max_s = s.iter().cloned().fold(0.0f64, f64::max);
        assert!(s[6] >= max_s - tol, "{obj}: G {} not maximal", s[6]);
    }
    // Min-sigma drives the pattern to the extremes: leaves small, late
    // gates saturated (paper: 1.00 / 2.01 / 3.00).
    let r = Sizer::new(&c, &lib())
        .objective(Objective::Sigma)
        .delay_spec(DelaySpec::ExactMean(6.5))
        .solve()
        .expect("sizes");
    assert!(r.s[6] > 2.9, "G {}", r.s[6]);
    assert!(r.s[0] < r.s[2], "leaves should be smaller than mid gates");
}

/// Table 1 shapes on the small synthetic benchmark (apex2-class): the
/// relative behaviour of the seven rows.
#[test]
fn table1_shapes_apex2() {
    let c = generate::benchmark_suite().remove(1);
    assert_eq!(c.name(), "apex2");
    let l = lib();
    let n = c.num_gates();
    let baseline = ssta(&c, &l, &vec![1.0; n]).delay;

    let min_mu = Sizer::new(&c, &l)
        .objective(Objective::MeanDelay)
        .solve()
        .expect("sizes");
    let min_m3s = Sizer::new(&c, &l)
        .objective(Objective::MeanPlusKSigma(3.0))
        .solve()
        .expect("sizes");

    // Sizing speeds the circuit up substantially at an area premium.
    assert!(min_mu.delay.mean() < 0.75 * baseline.mean());
    assert!(min_mu.area > n as f64 * 1.1);
    // The robust objective accepts a slightly larger mean for a clearly
    // smaller sigma, and wins on its own metric.
    assert!(min_m3s.delay.mean() >= min_mu.delay.mean() - 1e-3);
    assert!(min_m3s.delay.sigma() < min_mu.delay.sigma() - 0.05);
    assert!(min_m3s.mean_plus_k_sigma(3.0) <= min_mu.mean_plus_k_sigma(3.0) + 1e-3);

    // Area-min rows under a deadline: tightening mu -> mu+sigma -> mu+3sigma
    // lowers both mu and sigma while raising area.
    let d = 29.0 * baseline.mean() / 31.50;
    let r0 = Sizer::new(&c, &l)
        .objective(Objective::Area)
        .delay_spec(DelaySpec::MaxMean(d))
        .solve()
        .expect("sizes");
    let r1 = Sizer::new(&c, &l)
        .objective(Objective::Area)
        .delay_spec(DelaySpec::MaxMeanPlusKSigma { k: 1.0, d })
        .solve()
        .expect("sizes");
    let r3 = Sizer::new(&c, &l)
        .objective(Objective::Area)
        .delay_spec(DelaySpec::MaxMeanPlusKSigma { k: 3.0, d })
        .solve()
        .expect("sizes");
    assert!(r0.delay.mean() <= d + 0.05);
    assert!(r1.mean_plus_k_sigma(1.0) <= d + 0.05);
    assert!(r3.mean_plus_k_sigma(3.0) <= d + 0.05);
    assert!(r1.delay.mean() < r0.delay.mean());
    assert!(r3.delay.mean() < r1.delay.mean());
    assert!(r3.delay.sigma() < r0.delay.sigma());
    assert!(r0.area < r1.area + 1e-6);
    assert!(r1.area < r3.area + 1e-6);
    // All well below the cost of full sizing.
    assert!(r3.area < min_mu.area);
}

/// The solver handles the largest benchmark (k2-class, 1692 cells) with
/// the reduced-space path — the paper's headline scalability claim.
#[test]
fn scales_to_k2() {
    let c = generate::benchmark_suite().remove(2);
    assert_eq!(c.name(), "k2");
    let l = lib();
    let n = c.num_gates();
    let baseline = ssta(&c, &l, &vec![1.0; n]).delay;
    let r = Sizer::new(&c, &l)
        .objective(Objective::MeanDelay)
        .solver(SolverChoice::ReducedSpace)
        .solve()
        .expect("sizes");
    assert!(
        r.delay.mean() < 0.75 * baseline.mean(),
        "{}",
        r.delay.mean()
    );
}
