//! Shadow-write contract (`--features shadow-write`): every parallel
//! kernel stamps the `sgs_trace::shadow` ledger on each element it
//! writes, so a real execution — not just the declared plan — proves its
//! partition disjoint and covering. Clean runs of all three kernel
//! families must leave clean, non-empty ledgers at whatever thread count
//! `RAYON_NUM_THREADS` pins (CI sweeps 1/2/4/8), and planted
//! `corrupt_overlap_*` stamps must surface as overlaps.

use sgs_core::{DelaySpec, Objective, Sizer, SizingProblem};
use sgs_netlist::{generate, Library};
use sgs_nlp::NlpProblem;
use sgs_ssta::{monte_carlo, ArrivalSoa, DelayModel, LevelSweeper, McOptions};
use sgs_trace::shadow;
use std::sync::Mutex;

/// The shadow registry is process-global; tests must not interleave.
static LOCK: Mutex<()> = Mutex::new(());

fn lib() -> Library {
    Library::paper_default()
}

fn report_for<'a>(reports: &'a [shadow::ShadowReport], kernel: &str) -> &'a shadow::ShadowReport {
    reports
        .iter()
        .find(|r| r.kernel == kernel)
        .unwrap_or_else(|| panic!("no ledger for kernel `{kernel}`: {reports:?}"))
}

#[test]
fn assembly_kernels_stamp_clean_covering_ledgers() {
    let _g = LOCK.lock().unwrap();
    shadow::reset();
    let problem = SizingProblem::build(
        &generate::ripple_carry_adder(8),
        &lib(),
        Objective::MeanPlusKSigma(3.0),
        DelaySpec::MaxMean(40.0),
    );
    let x = problem.initial_point(&vec![1.5; problem.num_gates()]);
    let mut c = vec![0.0; problem.num_constraints()];
    problem.constraints(&x, &mut c);
    let mut jac = vec![0.0; problem.jacobian_structure().len()];
    problem.jacobian_values(&x, &mut jac);
    let mut hess = vec![0.0; problem.hessian_structure().len()];
    let lambda = vec![0.1; problem.num_constraints()];
    problem.hessian_values(&x, 1.0, &lambda, &mut hess);

    let reports = shadow::take_reports();
    for kernel in [
        "assembly_constraints",
        "assembly_jacobian",
        "assembly_hessian",
    ] {
        let r = report_for(&reports, kernel);
        assert!(r.is_clean(), "{kernel} ledger dirty: {r:?}");
        assert!(r.writes > 0, "{kernel} stamped nothing");
        assert_eq!(r.writes, r.len as u64, "{kernel} coverage incomplete");
    }
}

#[test]
fn sweep_and_mc_stamp_clean_covering_ledgers() {
    let _g = LOCK.lock().unwrap();
    shadow::reset();
    let c = generate::ripple_carry_adder(16);
    let model = DelayModel::new(&c, &lib());
    let s = vec![1.25; c.num_gates()];
    let mut arrivals = ArrivalSoa::zeroed(c.num_gates());
    LevelSweeper::new(&c).sweep(&c, &model, &s, None, &mut arrivals);
    monte_carlo(
        &c,
        &lib(),
        &s,
        &McOptions {
            samples: 4096,
            seed: 7,
            criticality: true,
            parallel: true,
        },
    );

    let reports = shadow::take_reports();
    for kernel in ["level_sweep", "mc_samples"] {
        let r = report_for(&reports, kernel);
        assert!(r.is_clean(), "{kernel} ledger dirty: {r:?}");
        assert_eq!(r.writes, r.len as u64, "{kernel} coverage incomplete");
    }
}

#[test]
fn a_full_solve_stamps_only_clean_ledgers() {
    let _g = LOCK.lock().unwrap();
    shadow::reset();
    let circuit = generate::tree7();
    Sizer::new(&circuit, &lib())
        .objective(Objective::MeanPlusKSigma(3.0))
        .solve()
        .expect("tree solve converges");
    let reports = shadow::take_reports();
    assert!(!reports.is_empty(), "solve must exercise stamped kernels");
    for r in &reports {
        assert!(r.is_clean(), "kernel `{}` ledger dirty: {r:?}", r.kernel);
    }
}

#[test]
fn planted_sweep_overlap_is_recorded() {
    let _g = LOCK.lock().unwrap();
    shadow::reset();
    let c = generate::ripple_carry_adder(16);
    let model = DelayModel::new(&c, &lib());
    let s = vec![1.25; c.num_gates()];
    let mut sweeper = LevelSweeper::new(&c);
    let pos = c.num_gates() / 2;
    sweeper.corrupt_overlap_gate(pos);
    let g = sweeper.schedule().order()[pos];
    let mut arrivals = ArrivalSoa::zeroed(c.num_gates());
    sweeper.sweep(&c, &model, &s, None, &mut arrivals);

    let reports = shadow::take_reports();
    let r = report_for(&reports, "level_sweep");
    assert!(!r.is_clean(), "planted overlap invisible: {r:?}");
    assert!(
        r.overlaps.iter().any(|o| o.index == g),
        "overlap at gate {g} not recorded: {r:?}"
    );
}

#[test]
fn planted_assembly_overlap_is_recorded() {
    let _g = LOCK.lock().unwrap();
    shadow::reset();
    let mut problem = SizingProblem::build(
        &generate::ripple_carry_adder(8),
        &lib(),
        Objective::Area,
        DelaySpec::MaxMean(40.0),
    );
    problem.corrupt_overlap_jacobian_group(0);
    let x = problem.initial_point(&vec![1.5; problem.num_gates()]);
    let mut jac = vec![0.0; problem.jacobian_structure().len()];
    problem.jacobian_values(&x, &mut jac);

    let reports = shadow::take_reports();
    let r = report_for(&reports, "assembly_jacobian");
    assert!(!r.is_clean(), "planted overlap invisible: {r:?}");
    assert_eq!(r.overlaps[0].unit_a, 0, "group 0 is one of the writers");
}
