//! Integration: Monte Carlo referees the analytical machinery end-to-end —
//! sized circuits must deliver the yields the statistical model promises.

use sgs_core::{DelaySpec, Objective, Sizer};
use sgs_netlist::{generate, Library};
use sgs_ssta::{monte_carlo, McOptions};

fn lib() -> Library {
    Library::paper_default()
}

#[test]
fn sized_tree_meets_promised_yields() {
    let c = generate::tree7();
    let r = Sizer::new(&c, &lib())
        .objective(Objective::MeanPlusKSigma(3.0))
        .solve()
        .expect("sizes");
    let mc = monte_carlo(
        &c,
        &lib(),
        &r.s,
        &McOptions {
            samples: 120_000,
            seed: 31,
            criticality: false,
            ..Default::default()
        },
    );
    // Paper: mu covers 50%, mu + sigma 84.1%, mu + 3 sigma 99.8%.
    let y0 = mc.yield_at(r.delay.mean());
    let y1 = mc.yield_at(r.mean_plus_k_sigma(1.0));
    let y3 = mc.yield_at(r.mean_plus_k_sigma(3.0));
    assert!((y0 - 0.5).abs() < 0.04, "yield at mu: {y0}");
    assert!((y1 - 0.841).abs() < 0.03, "yield at mu + sigma: {y1}");
    assert!((y3 - 0.998).abs() < 0.004, "yield at mu + 3 sigma: {y3}");
}

#[test]
fn area_constrained_sizing_hits_target_yield() {
    // min area s.t. mu + 3 sigma <= D should produce a circuit whose MC
    // yield at D is about 99.8% — the constraint is active at the optimum,
    // so the yield should not be much higher either.
    let c = generate::ripple_carry_adder(5);
    let n = c.num_gates();
    let baseline = sgs_ssta::ssta(&c, &lib(), &vec![1.0; n]).delay;
    let d = baseline.mean() * 0.95;
    let r = Sizer::new(&c, &lib())
        .objective(Objective::Area)
        .delay_spec(DelaySpec::MaxMeanPlusKSigma { k: 3.0, d })
        .solve()
        .expect("sizes");
    assert!(r.mean_plus_k_sigma(3.0) <= d + 1e-2);
    let mc = monte_carlo(
        &c,
        &lib(),
        &r.s,
        &McOptions {
            samples: 120_000,
            seed: 33,
            criticality: false,
            ..Default::default()
        },
    );
    let y = mc.yield_at(d);
    assert!(y > 0.99, "yield {y} at deadline {d}");
    // Active constraint: not gratuitously overdesigned.
    assert!(y < 0.99999, "yield {y} suggests the bound was not active");
}

#[test]
fn robust_sizing_beats_mean_sizing_on_tail_delay() {
    // On the tree, compare empirical 99.8th percentiles: the mu + 3 sigma
    // optimum should be at least as good as the mu optimum's.
    let c = generate::tree7();
    let mean_sized = Sizer::new(&c, &lib())
        .objective(Objective::MeanDelay)
        .solve()
        .expect("sizes");
    let robust = Sizer::new(&c, &lib())
        .objective(Objective::MeanPlusKSigma(3.0))
        .solve()
        .expect("sizes");
    let opts = McOptions {
        samples: 150_000,
        seed: 35,
        criticality: false,
        ..Default::default()
    };
    let q_mean = monte_carlo(&c, &lib(), &mean_sized.s, &opts).quantile(0.998);
    let q_rob = monte_carlo(&c, &lib(), &robust.s, &opts).quantile(0.998);
    assert!(
        q_rob <= q_mean + 0.02,
        "robust tail {q_rob} worse than mean-sized tail {q_mean}"
    );
}

#[test]
fn criticality_follows_sizing_pressure() {
    // After min-delay sizing of the tree every path is near-critical;
    // criticality of the two mid gates should be roughly balanced.
    let c = generate::tree7();
    let r = Sizer::new(&c, &lib())
        .objective(Objective::MeanDelay)
        .solve()
        .expect("sizes");
    let mc = monte_carlo(
        &c,
        &lib(),
        &r.s,
        &McOptions {
            samples: 30_000,
            seed: 37,
            criticality: true,
            ..Default::default()
        },
    );
    // G always critical; C and F split the trials roughly evenly.
    assert!((mc.criticality[6] - 1.0).abs() < 1e-9);
    assert!(
        (mc.criticality[2] - 0.5).abs() < 0.1,
        "C: {}",
        mc.criticality[2]
    );
    assert!(
        (mc.criticality[5] - 0.5).abs() < 0.1,
        "F: {}",
        mc.criticality[5]
    );
}
