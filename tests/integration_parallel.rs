//! Integration: the parallel evaluation engine is an implementation
//! detail. Monte Carlo, levelized SSTA and the NLP assembly paths must
//! produce results bit-identical to their sequential counterparts and
//! invariant to the configured thread count — parallelism may only change
//! wall-clock time, never a single bit of output.

use sgs_core::{DelaySpec, Objective, SizingProblem};
use sgs_netlist::{generate, Circuit, Library};
use sgs_nlp::NlpProblem;
use sgs_ssta::{monte_carlo, ssta, ssta_levelized, McOptions};

fn lib() -> Library {
    Library::paper_default()
}

/// A deterministic, non-uniform speed-factor vector.
fn speeds(n: usize) -> Vec<f64> {
    (0..n).map(|i| 1.0 + 0.05 * (i % 37) as f64).collect()
}

fn random_dag() -> Circuit {
    generate::random_dag(&sgs_netlist::generate::RandomDagSpec {
        name: "par".into(),
        cells: 60,
        inputs: 10,
        depth: 8,
        seed: 42,
        ..Default::default()
    })
}

fn force_threads(n: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .ok();
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn parallel_mc_bit_identical_and_thread_invariant() {
    let c = generate::ripple_carry_adder(12);
    let s = speeds(c.num_gates());
    let mk = |parallel| McOptions {
        samples: 30_000,
        seed: 77,
        criticality: true,
        parallel,
    };
    let base = monte_carlo(&c, &lib(), &s, &mk(false));
    // The parallel path must reproduce the sequential run exactly at any
    // thread count: `delay` moments, every sample, every criticality.
    for threads in [1usize, 2, 4, 8] {
        force_threads(threads);
        let par = monte_carlo(&c, &lib(), &s, &mk(true));
        assert_eq!(
            par.delay.mean().to_bits(),
            base.delay.mean().to_bits(),
            "mean differs at {threads} threads"
        );
        assert_eq!(
            par.delay.var().to_bits(),
            base.delay.var().to_bits(),
            "var differs at {threads} threads"
        );
        assert_eq!(
            bits(par.samples()),
            bits(base.samples()),
            "samples differ at {threads}"
        );
        assert_eq!(
            bits(&par.criticality),
            bits(&base.criticality),
            "criticality differs at {threads}"
        );
    }
}

#[test]
fn levelized_ssta_matches_sequential() {
    for c in [
        generate::tree7(),
        generate::ripple_carry_adder(8),
        random_dag(),
    ] {
        let s = speeds(c.num_gates());
        let seq = ssta(&c, &lib(), &s);
        let lev = ssta_levelized(&c, &lib(), &s);
        assert!(
            (seq.delay.mean() - lev.delay.mean()).abs() < 1e-12,
            "{}: mean {} vs {}",
            c.name(),
            seq.delay.mean(),
            lev.delay.mean()
        );
        assert!(
            (seq.delay.var() - lev.delay.var()).abs() < 1e-12,
            "{}: var differs",
            c.name()
        );
        for (a, b) in seq.arrivals.iter().zip(&lev.arrivals) {
            assert!(
                (a.mean() - b.mean()).abs() < 1e-12,
                "{}: arrival mean",
                c.name()
            );
            assert!(
                (a.var() - b.var()).abs() < 1e-12,
                "{}: arrival var",
                c.name()
            );
        }
    }
}

#[test]
fn nlp_assembly_thread_invariant() {
    // Large enough that the grouped assembly crosses the parallel
    // threshold (>= 512 constraints) once more than one thread is
    // configured.
    let c = generate::random_dag(&sgs_netlist::generate::RandomDagSpec {
        name: "nlp-par".into(),
        cells: 150,
        inputs: 16,
        depth: 10,
        seed: 7,
        ..Default::default()
    });
    let p = SizingProblem::build(
        &c,
        &lib(),
        Objective::MeanPlusKSigma(3.0),
        DelaySpec::MaxMeanPlusKSigma { k: 3.0, d: 60.0 },
    );
    assert!(
        p.num_constraints() >= 512,
        "want the parallel path: {}",
        p.num_constraints()
    );
    let x = p.initial_point(&speeds(c.num_gates()));
    let lambda: Vec<f64> = (0..p.num_constraints())
        .map(|i| 0.4 * ((i as f64 * 0.7).sin()))
        .collect();

    let eval = |threads: usize| {
        force_threads(threads);
        let mut con = vec![0.0; p.num_constraints()];
        let mut jac = vec![0.0; p.jacobian_structure().len()];
        let mut hes = vec![0.0; p.hessian_structure().len()];
        p.constraints(&x, &mut con);
        p.jacobian_values(&x, &mut jac);
        p.hessian_values(&x, 1.0, &lambda, &mut hes);
        (bits(&con), bits(&jac), bits(&hes))
    };

    let base = eval(1); // sequential sweep
    for threads in [2usize, 4, 8] {
        let par = eval(threads);
        assert_eq!(par.0, base.0, "constraints differ at {threads} threads");
        assert_eq!(par.1, base.1, "jacobian differs at {threads} threads");
        assert_eq!(par.2, base.2, "hessian differs at {threads} threads");
    }
}
