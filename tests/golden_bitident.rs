//! Bit-identity golden tests for the metered solve path.
//!
//! The allocation-free hot paths (workspace-reused inner iterations,
//! preallocated CSR assembly, the SoA levelized sweep and the batched
//! Clark kernel) are refactors, not re-derivations: they must reproduce
//! the pre-refactor solver *bit for bit*. These tests pin the full
//! iterate vector, the objective, the `Tmax` moments and the Clark
//! variance-clamp count of the two metered circuits (`tree7`, `rdag40`)
//! against goldens generated before the refactor. Values are stored as
//! 17-significant-digit decimals (which round-trip `f64` exactly) and
//! compared on the *bit pattern*, not within a tolerance.
//!
//! Regenerate intentionally with:
//!
//! ```text
//! REGEN_GOLDEN=1 cargo test -p sgs-core --test golden_bitident
//! ```

use sgs_core::{DelaySpec, Objective, Sizer};
use sgs_netlist::{blif, generate, Circuit, Library};
use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn lib() -> Library {
    Library::paper_default()
}

fn rdag40() -> Circuit {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../benchmarks/rdag40.blif");
    let text = std::fs::read_to_string(&path).expect("benchmarks/rdag40.blif exists");
    blif::parse(&text).expect("rdag40.blif parses")
}

/// Renders one solve as `key value` lines with exact-round-trip decimals.
fn render(circuit: &Circuit, deadline: f64) -> String {
    let r = Sizer::new(circuit, &lib())
        .objective(Objective::Area)
        .delay_spec(DelaySpec::MaxMeanPlusKSigma {
            k: 3.0,
            d: deadline,
        })
        .solve()
        .expect("solve succeeds");
    let mut out = String::new();
    writeln!(out, "objective {:.17e}", r.objective).unwrap();
    writeln!(out, "mu_tmax {:.17e}", r.delay.mean()).unwrap();
    writeln!(out, "var_tmax {:.17e}", r.delay.var()).unwrap();
    writeln!(out, "clark_var_clamps {}", r.clark_var_clamps).unwrap();
    for (g, s) in r.s.iter().enumerate() {
        writeln!(out, "s[{g}] {s:.17e}").unwrap();
    }
    out
}

/// Asserts `actual` matches the golden file bit for bit: every numeric
/// field must parse to the same `f64` bit pattern (or the same integer).
fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with REGEN_GOLDEN=1 to create it",
            path.display()
        )
    });
    let exp_lines: Vec<&str> = expected.lines().collect();
    let act_lines: Vec<&str> = actual.lines().collect();
    assert_eq!(
        exp_lines.len(),
        act_lines.len(),
        "{name}: line count changed"
    );
    for (e, a) in exp_lines.iter().zip(&act_lines) {
        let (ek, ev) = e.split_once(' ').unwrap();
        let (ak, av) = a.split_once(' ').unwrap();
        assert_eq!(ek, ak, "{name}: key changed");
        if ek == "clark_var_clamps" {
            assert_eq!(ev, av, "{name}: {ek} changed");
            continue;
        }
        let ev: f64 = ev.parse().unwrap();
        let av: f64 = av.parse().unwrap();
        assert_eq!(
            ev.to_bits(),
            av.to_bits(),
            "{name}: {ek} drifted: golden {ev:.17e} vs actual {av:.17e}"
        );
    }
}

/// The tree benchmark under the metered CI configuration
/// (`--objective area --deadline 12`).
#[test]
fn bitident_tree7_area_d12() {
    let c = generate::tree7();
    check_golden("bitident_tree7.txt", &render(&c, 12.0));
}

/// The random-DAG benchmark under the metered CI configuration
/// (`--objective area --deadline 20`).
#[test]
fn bitident_rdag40_area_d20() {
    let c = rdag40();
    check_golden("bitident_rdag40.txt", &render(&c, 20.0));
}

/// Sequential and forced-parallel constraint assembly must agree bit for
/// bit on the solved iterates (thread-count invariance of the solve).
#[test]
fn bitident_assembly_par_threshold_invariant() {
    use sgs_core::SizingProblem;
    use sgs_nlp::auglag;

    let c = rdag40();
    let spec = DelaySpec::MaxMeanPlusKSigma { k: 3.0, d: 20.0 };
    let solve_with = |threshold: usize| {
        let mut p = SizingProblem::build(&c, &lib(), Objective::Area, spec.clone());
        p.set_par_threshold(threshold);
        let x0 = p.initial_point(&vec![1.0; c.num_gates()]);
        let r = auglag::solve(&p, &x0, &auglag::AugLagOptions::default());
        (r.x, r.f)
    };
    let (x_seq, f_seq) = solve_with(usize::MAX);
    let (x_par, f_par) = solve_with(0);
    assert_eq!(f_seq.to_bits(), f_par.to_bits(), "objective differs");
    for (i, (a, b)) in x_seq.iter().zip(&x_par).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "iterate {i} differs");
    }
}
