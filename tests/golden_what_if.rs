//! Golden-file regression for a scripted what-if session.
//!
//! Drives the incremental engine behind [`sgs_core::Resolver::what_if`]
//! through a fixed, seeded sequence of single-gate resizes on the
//! committed `benchmarks/rdag40.blif` netlist and snapshots the per-step
//! `Tmax` moments (`mu`, `sigma`) into `tests/golden/what_if_rdag40.txt`.
//! The engine is deterministic, so the table is asserted to 1e-9: any
//! drift in the dirty-cone propagation, the output prefix-fold cache or
//! Clark's max operator shows up as a diff here.
//!
//! Each step also re-asserts the incrementality acceptance criterion: a
//! single-gate perturbation recomputes strictly fewer gates than the
//! circuit holds.
//!
//! Regenerate intentionally with:
//!
//! ```text
//! REGEN_GOLDEN=1 cargo test -p sgs-core --test golden_what_if
//! ```

use sgs_core::Resolver;
use sgs_netlist::{blif, GateId, Library};
use std::fmt::Write as _;
use std::path::PathBuf;

const TOL: f64 = 1e-9;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// splitmix64 step — the same deterministic stream the what-if bench
/// binary and the oracle battery use.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with REGEN_GOLDEN=1 to create it",
            path.display()
        )
    });
    let exp_lines: Vec<&str> = expected.lines().collect();
    let act_lines: Vec<&str> = actual.lines().collect();
    assert_eq!(
        exp_lines.len(),
        act_lines.len(),
        "{name}: row count changed"
    );
    for (e, a) in exp_lines.iter().zip(&act_lines) {
        let ef: Vec<&str> = e.split_whitespace().collect();
        let af: Vec<&str> = a.split_whitespace().collect();
        assert_eq!(ef[0], af[0], "{name}: row label changed");
        for (col, (ev, av)) in ef[1..].iter().zip(&af[1..]).enumerate() {
            let ev: f64 = ev.parse().unwrap();
            let av: f64 = av.parse().unwrap();
            assert!(
                (ev - av).abs() <= TOL * (1.0 + ev.abs()),
                "{name}, row {}, col {col}: golden {ev:.17e} vs actual {av:.17e}",
                ef[0]
            );
        }
    }
}

/// A 24-step scripted session: deterministic single-gate resizes, one
/// golden row of `Tmax` moments per step.
#[test]
fn golden_what_if_rdag40_session() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../benchmarks/rdag40.blif");
    let text = std::fs::read_to_string(&path).expect("committed benchmark netlist");
    let circuit = blif::parse(&text).expect("rdag40.blif parses");
    let lib = Library::paper_default();
    let n = circuit.num_gates();

    let mut resolver = Resolver::new(&circuit, &lib);
    let mut state = 0x40u64;
    let mut out = String::new();
    writeln!(
        out,
        "baseline {:.17e} {:.17e}",
        resolver.delay().mean(),
        resolver.delay().sigma()
    )
    .unwrap();
    for step in 0..24 {
        let g = (splitmix64(&mut state) % n as u64) as usize;
        let v = 1.0 + unit(&mut state) * (lib.s_limit - 1.0);
        let report = resolver.what_if(&[(GateId(g), v)]);
        // Incrementality criterion, re-pinned on every scripted step.
        assert!(
            report.stats.gates_recomputed < n,
            "step {step}: single-gate change recomputed all {n} gates"
        );
        writeln!(
            out,
            "step_{step:02} {:.17e} {:.17e}",
            report.delay.mean(),
            report.delay.sigma()
        )
        .unwrap();
    }
    check_golden("what_if_rdag40.txt", &out);
}
