//! Integration: the observability layer end-to-end through the sizer.
//!
//! The contract under test (the acceptance criteria of the trace layer):
//!
//! * a `MemorySink` run captures one convergence record per outer
//!   iteration, and the recorded phase spans account for at least 95% of
//!   the solve's wall clock — the trace tells the whole story, not a
//!   sample of it;
//! * tracing is observation only: a solve with a `NopSink` attached is
//!   bit-identical (iterates, objective, eval counts) to an untraced one;
//! * a solve whose objective turns NaN mid-run is reported as diverged in
//!   the trace and recovered by the multi-start policy;
//! * the JSONL sink round-trips through `validate_jsonl`, the same check
//!   the `trace_lint` CI gate applies to bench-binary traces.

use sgs_core::{DelaySpec, Objective, Sizer, SolverChoice};
use sgs_netlist::generate::{self, RandomDagSpec};
use sgs_netlist::{Circuit, Library};
use sgs_trace::{json::validate_jsonl, JsonlSink, MemorySink, TraceEvent, NOP_SINK};

fn lib() -> Library {
    Library::paper_default()
}

fn dag(cells: usize, seed: u64) -> Circuit {
    generate::random_dag(&RandomDagSpec {
        name: format!("trace{cells}"),
        cells,
        inputs: 4,
        depth: 4,
        seed,
        ..Default::default()
    })
}

#[test]
fn memory_sink_records_every_outer_iteration_and_full_wall_clock() {
    let c = dag(20, 7);
    let sink = MemorySink::new();
    let r = Sizer::new(&c, &lib())
        .objective(Objective::Area)
        .delay_spec(DelaySpec::MaxMeanPlusKSigma { k: 3.0, d: 18.0 })
        .solver(SolverChoice::FullSpace)
        .trace(&sink)
        .solve()
        .expect("traced sizing converges");

    let outer = sink.count(|e| matches!(e, TraceEvent::Outer(_)));
    assert!(r.outer_iterations >= 1);
    assert_eq!(
        outer, r.outer_iterations,
        "one convergence record per outer iteration"
    );

    // Outer indices are contiguous from 0 and carry finite diagnostics.
    let mut indices = Vec::new();
    for e in sink.events() {
        if let TraceEvent::Outer(rec) = e {
            assert!(rec.merit.is_finite());
            assert!(rec.c_norm.is_finite() && rec.c_norm >= 0.0);
            indices.push(rec.outer);
        }
    }
    let expect: Vec<usize> = (0..outer).collect();
    assert_eq!(indices, expect, "outer records in order, no gaps");

    // Top-level sizer phases cover >= 95% of the reported wall clock.
    let covered: f64 = [
        "reduced_space",
        "build_problem",
        "auglag",
        "evaluate",
        "report",
    ]
    .iter()
    .map(|p| sink.span_seconds(p))
    .sum();
    assert!(
        covered >= 0.95 * r.seconds,
        "phase spans cover {covered:.6}s of {:.6}s wall clock",
        r.seconds
    );
}

#[test]
fn nop_sink_solve_is_bit_identical_to_untraced() {
    // The pipeline circuits: the tree and a random DAG, both solver paths.
    let lb = lib();
    for (c, solver) in [
        (generate::tree7(), SolverChoice::FullSpace),
        (dag(14, 99), SolverChoice::FullSpace),
        (generate::tree7(), SolverChoice::ReducedSpace),
    ] {
        let base = Sizer::new(&c, &lb)
            .objective(Objective::MeanPlusKSigma(3.0))
            .solver(solver);
        let plain = base.clone().solve().expect("untraced solve");
        let traced = base.trace(&NOP_SINK).solve().expect("nop-traced solve");

        let pb: Vec<u64> = plain.s.iter().map(|v| v.to_bits()).collect();
        let tb: Vec<u64> = traced.s.iter().map(|v| v.to_bits()).collect();
        assert_eq!(pb, tb, "iterates must be bit-identical");
        assert_eq!(plain.objective.to_bits(), traced.objective.to_bits());
        assert_eq!(plain.outer_iterations, traced.outer_iterations);
        assert_eq!(plain.inner_iterations, traced.inner_iterations);
        assert_eq!(plain.evals, traced.evals, "evaluation counts unchanged");
    }
}

#[test]
fn poisoned_solve_reports_divergence_and_recovers() {
    let c = generate::tree7();
    let sink = MemorySink::new();
    let r = Sizer::new(&c, &lib())
        .objective(Objective::Area)
        .delay_spec(DelaySpec::MaxMean(6.5))
        .solver(SolverChoice::FullSpace)
        .poison_nan_after(4)
        .trace(&sink)
        .solve()
        .expect("multi-start recovers from a poisoned objective");

    assert!(r.s.iter().all(|v| v.is_finite()));
    assert!(r.delay.mean() <= 6.5 + 1e-4, "recovered point is feasible");

    let diverged: Vec<_> = sink
        .events()
        .into_iter()
        .filter_map(|e| match e {
            TraceEvent::Diverged { outer, detail, x } => Some((outer, detail, x)),
            _ => None,
        })
        .collect();
    assert!(!diverged.is_empty(), "divergence must be recorded");
    // The offending iterate travels with the event for post-mortems.
    assert!(diverged.iter().any(|(_, _, x)| !x.is_empty()));
    assert!(
        sink.count(|e| matches!(e, TraceEvent::Restart { .. })) >= 1,
        "recovery attempts must be recorded"
    );
}

#[test]
fn jsonl_sink_round_trips_through_the_lint_gate() {
    let path = std::env::temp_dir().join("sgs_integration_trace.jsonl");
    let _ = std::fs::remove_file(&path);
    {
        let sink = JsonlSink::create(&path).expect("create jsonl sink");
        let c = dag(16, 3);
        Sizer::new(&c, &lib())
            .objective(Objective::MeanDelay)
            .solver(SolverChoice::FullSpace)
            .trace(&sink)
            .solve()
            .expect("traced sizing converges");
    } // drop flushes
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let summary = validate_jsonl(&text).expect("every line is a valid record");
    assert!(summary.count("outer_iteration") >= 1);
    assert!(summary.count("phase_span") >= 1);
    assert!(
        summary.has_final_status(),
        "solve_done must close the stream"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn clark_clamp_counter_event_matches_result_field() {
    // The solver samples the process-global clamp counter around the
    // solve and reports the delta both on the result and as a
    // `clark_var_clamped` counter event; the two must agree.
    let c = dag(20, 11);
    let sink = MemorySink::new();
    let r = Sizer::new(&c, &lib())
        .objective(Objective::MeanPlusKSigma(3.0))
        .trace(&sink)
        .solve()
        .expect("traced sizing converges");

    let counters: Vec<u64> = sink
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Counter {
                name: "clark_var_clamped",
                value,
            } => Some(*value),
            _ => None,
        })
        .collect();
    assert_eq!(
        counters,
        vec![r.clark_var_clamps],
        "exactly one clamp-counter event, equal to the result field"
    );
}
