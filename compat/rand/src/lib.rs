//! Offline stand-in for the crates.io `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors a minimal, API-compatible subset of `rand 0.8`
//! covering exactly what the gate-sizing crates use:
//!
//! - [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`]
//! - [`Rng::gen`] for `f64` / `bool` / integers
//! - [`Rng::gen_range`] over half-open integer and float ranges
//! - generic call sites with `R: Rng + ?Sized` bounds
//!
//! `StdRng` here is xoshiro256++ seeded via SplitMix64 — not the ChaCha12
//! generator of the real crate, so *streams differ* from upstream `rand`,
//! but every consumer in this workspace only relies on determinism for a
//! fixed seed (and statistical quality), both of which hold.

#![deny(unsafe_code)]
#![deny(missing_docs)]

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Return the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32 uniformly random bits (upper half of a u64 draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling interface, blanket-implemented for every
/// [`RngCore`]. Methods deliberately avoid `Self: Sized` bounds so call
/// sites generic over `R: Rng + ?Sized` compile unchanged.
pub trait Rng: RngCore {
    /// Sample a value with the "standard" distribution for its type:
    /// `f64` uniform in `[0, 1)`, integers uniform over the full domain,
    /// `bool` fair coin.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(-1.0..1.0)`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_one(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on empty ranges.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                // Modulo draw; bias is < span / 2^64, negligible for the
                // small spans used in this workspace.
                let off = rng.next_u64() % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let off = rng.next_u64() % span as u64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u: f64 = f64::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u: f32 = f32::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

/// SplitMix64 step: the standard seed-expansion mixer.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Default generator: xoshiro256++ (Blackman & Vigna), seeded by
    /// SplitMix64 expansion of a 64-bit seed. Fast, passes BigCrush, and
    /// fully deterministic per seed — the properties this workspace needs.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn f64_in_unit_interval_with_correct_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_hits_all_buckets() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(*c > 700, "bucket {i} has {c}");
        }
        for _ in 0..1000 {
            let v = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn works_through_unsized_bounds() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
