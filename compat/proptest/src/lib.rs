//! Offline stand-in for the crates.io `proptest` crate.
//!
//! Implements the subset of proptest's API the workspace tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`), range /
//! tuple / [`Just`] / [`collection::vec`] / [`any`] strategies with
//! `prop_map` / `prop_flat_map` / [`prop_oneof!`], and the
//! [`prop_assert!`] / [`prop_assert_eq!`] assertion macros.
//!
//! Unlike real proptest this shim does **sampling only — no shrinking**:
//! each test case draws inputs from a deterministic per-case RNG stream
//! (seeded from a hash of the test name and the case index), so failures
//! are reproducible run-to-run but are reported at full size rather than
//! minimized.

#![deny(unsafe_code)]
#![deny(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure raised by `prop_assert!`-family macros inside a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type of a single generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of random values of type [`Strategy::Value`].
///
/// This shim's strategies are pure samplers: `sample` draws one value
/// from the distribution the strategy describes.
pub trait Strategy {
    /// Type of values produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform sampled values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each sampled value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

trait SampleDyn<V> {
    fn sample_dyn(&self, rng: &mut StdRng) -> V;
}

impl<S: Strategy> SampleDyn<S::Value> for S {
    fn sample_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.sample(rng)
    }
}

/// Type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<V>(Box<dyn SampleDyn<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut StdRng) -> V {
        self.0.sample_dyn(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives; built by
/// [`prop_oneof!`].
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build a union over the given alternatives (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut StdRng) -> V {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy, used via [`any`].
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of this type.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Strategy over all values of `T`, as returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Rng, StdRng, Strategy};

    /// Size specification for collection strategies: a fixed size or an
    /// inclusive range of sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` strategy with the given element strategy and size spec
    /// (fixed `usize` or a `usize` range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Splittable deterministic mixer for per-case seeds.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run `cases` generated test cases, panicking on the first failure.
/// Called by the expansion of [`proptest!`]; not intended for direct use.
pub fn run_cases<F>(config: ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> TestCaseResult,
{
    // FNV-1a over the test name gives a stable per-test base seed.
    let mut base: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        base ^= b as u64;
        base = base.wrapping_mul(0x100_0000_01b3);
    }
    for i in 0..config.cases {
        let seed = mix(base ^ mix(i as u64));
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(e) = case(&mut rng) {
            panic!("proptest: test {test_name} failed at case {i} (seed {seed:#x}): {e}");
        }
    }
}

/// Define property tests: each `#[test] fn name(pat in strategy, ..)` is
/// expanded into a unit test running many sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $(
        #[test]
        fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
    )* ) => {
        $(
            #[test]
            fn $name() {
                let __pt_config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(__pt_config, stringify!($name), |__pt_rng| {
                    $( let $pat = $crate::Strategy::sample(&($strat), __pt_rng); )+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body, failing the current
/// case (not panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pt_left, __pt_right) = (&$left, &$right);
        if !(*__pt_left == *__pt_right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __pt_left,
                __pt_right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__pt_left, __pt_right) = (&$left, &$right);
        if !(*__pt_left == *__pt_right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __pt_left,
                __pt_right
            )));
        }
    }};
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespace mirror so `prop::collection::vec` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn point() -> impl Strategy<Value = (f64, f64)> {
        (-1.0..1.0f64, 0.0..2.0f64)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respected((x, y) in point(), n in 1usize..5, b in any::<u64>()) {
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert!((0.0..2.0).contains(&y), "y = {y}");
            prop_assert!((1..5).contains(&n));
            let _ = b;
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0.0..1.0f64, 1..6), w in prop::collection::vec(1u8..5, 3)) {
            prop_assert!((1..=5).contains(&v.len()));
            prop_assert_eq!(w.len(), 3);
        }

        #[test]
        fn oneof_and_maps(v in prop_oneof![Just(1u8), Just(2u8)], d in (1usize..4).prop_flat_map(|n| prop::collection::vec(0.0..1.0f64, n))) {
            prop_assert!(v == 1 || v == 2);
            prop_assert!(!d.is_empty() && d.len() < 4);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        for round in 0..2 {
            let mut got = Vec::new();
            crate::run_cases(ProptestConfig::with_cases(10), "det", |rng| {
                got.push(Strategy::sample(&(0.0..1.0f64), rng));
                Ok(())
            });
            if round == 0 {
                first = got;
            } else {
                assert_eq!(first, got);
            }
        }
    }
}
