//! Offline stand-in for the crates.io `criterion` crate.
//!
//! Implements the small API surface the workspace benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — backed by a simple calibrated timing loop instead of
//! criterion's full statistical machinery. Each benchmark prints one
//! `name ... time/iter` line.

#![deny(unsafe_code)]
#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent measuring each benchmark.
const TARGET_MEASURE: Duration = Duration::from_millis(300);
/// Cap on calibrated iteration count (keeps ultra-cheap benches bounded).
const MAX_ITERS: u64 = 50_000_000;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            _sample_size: 0,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    _sample_size: usize,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the shim sizes its measurement
    /// loop by wall-clock, so the sample count is unused.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self._sample_size = n;
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Benchmark `f` with an input value under `id` within this group.
    pub fn bench_with_input<I, D, F>(&mut self, id: I, input: &D, mut f: F) -> &mut Self
    where
        I: std::fmt::Display,
        F: FnMut(&mut Bencher, &D),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Finish the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter, e.g.
/// `BenchmarkId::new("ssta", 512)` displays as `ssta/512`.
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            repr: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the routine.
pub struct Bencher {
    /// Measured nanoseconds per iteration, set by `iter`.
    ns_per_iter: f64,
}

impl Bencher {
    /// Time `routine`: calibrate an iteration count targeting a fixed
    /// measurement window, then measure.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up + calibration: double until the batch takes >= 1ms.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || iters >= MAX_ITERS {
                break dt.as_secs_f64() / iters as f64;
            }
            iters = iters.saturating_mul(2);
        };
        // Measurement: enough iterations to fill the target window.
        let measured =
            ((TARGET_MEASURE.as_secs_f64() / per_iter.max(1e-12)) as u64).clamp(1, MAX_ITERS);
        let t0 = Instant::now();
        for _ in 0..measured {
            black_box(routine());
        }
        self.ns_per_iter = t0.elapsed().as_secs_f64() * 1e9 / measured as f64;
    }
}

fn run_one<F>(name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { ns_per_iter: 0.0 };
    f(&mut b);
    let ns = b.ns_per_iter;
    let human = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    };
    println!("{name:<50} {human}/iter");
}

/// Define a function running a list of benchmark targets, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Benchmark group entry point defined by `criterion_group!`.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("with_input", 42), &42u64, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
    }
}
