//! Offline stand-in for the crates.io `rayon` crate.
//!
//! Provides genuine data parallelism via `std::thread::scope` with the
//! subset of rayon's API this workspace uses:
//!
//! - `par_iter` / `into_par_iter` / `par_iter_mut` with `map`,
//!   `for_each`, `enumerate`, `collect`, `reduce`
//! - `par_chunks_mut` for disjoint-slice fills
//! - [`join`] for two-way fork-join
//! - [`ThreadPoolBuilder`] + [`current_num_threads`] thread-count knobs
//!   (honouring `RAYON_NUM_THREADS`)
//!
//! Unlike real rayon there is no work-stealing pool: each parallel call
//! splits its input into contiguous per-thread blocks and spawns scoped
//! threads. Results are concatenated in input order, so `map(...)
//! .collect()` is deterministic and independent of thread count — a
//! property the deterministic-MC and levelized-SSTA paths rely on.

#![deny(unsafe_code)]
#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Thread-count override installed by [`ThreadPoolBuilder::build_global`]
/// (0 = unset).
static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of threads parallel calls will use: the `build_global` override
/// if set, else `RAYON_NUM_THREADS`, else the machine's available
/// parallelism.
pub fn current_num_threads() -> usize {
    let configured = CONFIGURED_THREADS.load(Ordering::Relaxed);
    if configured > 0 {
        return configured;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error type for [`ThreadPoolBuilder::build_global`] (never produced by
/// this shim, present for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures the global thread count used by subsequent parallel calls.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start a builder with no overrides.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `n` threads (0 keeps the environment/machine default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install the requested thread count globally. Unlike real rayon
    /// this may be called repeatedly; the last call wins.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        CONFIGURED_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Half-open `(start, end)` bounds of the chunks [`ParallelSliceMut::
/// par_chunks_mut`] hands out for a slice of length `len`: the exact
/// partition `chunks_mut(chunk_size)` produces — full chunks of
/// `chunk_size` with a shorter tail. Write-plan introspection
/// (`sgs-core::plan`) uses this to describe chunked kernels with the same
/// arithmetic the shim executes, so the static race checker certifies the
/// partition that actually runs.
pub fn chunk_bounds(len: usize, chunk_size: usize) -> Vec<(usize, usize)> {
    assert!(chunk_size > 0, "chunk_bounds: chunk_size must be > 0");
    let mut bounds = Vec::with_capacity(len.div_ceil(chunk_size));
    let mut start = 0;
    while start < len {
        let end = (start + chunk_size).min(len);
        bounds.push((start, end));
        start = end;
    }
    bounds
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon-compat: joined closure panicked");
        (ra, rb)
    })
}

/// Split `items` into contiguous per-thread blocks, apply `f` to each
/// element, and return results concatenated in input order.
fn run_blocks<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let len = items.len();
    let threads = current_num_threads().min(len.max(1));
    if threads <= 1 || len < 2 {
        return items.into_iter().map(f).collect();
    }
    let base = len / threads;
    let rem = len % threads;
    let mut blocks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    for t in 0..threads {
        let size = base + usize::from(t < rem);
        blocks.push(it.by_ref().take(size).collect());
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = blocks
            .into_iter()
            .map(|block| scope.spawn(move || block.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(len);
        for h in handles {
            out.extend(h.join().expect("rayon-compat: worker thread panicked"));
        }
        out
    })
}

/// An eager parallel iterator over a materialized item list.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every item in parallel (lazy until a consumer runs).
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Pair each item with its index (in input order).
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Pair items positionally with another parallel iterator, stopping
    /// at the shorter of the two (as real rayon's indexed `zip` does).
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Run `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_blocks(self.items, &|t| f(t));
    }

    /// Accepted for API compatibility; the shim always splits into
    /// per-thread blocks, so the hint is a no-op.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

/// A mapped parallel iterator; consumed by `collect`, `for_each`,
/// `reduce`, or `sum`.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Materialize the mapped results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(run_blocks(self.items, &self.f))
    }

    /// Run the mapped computation for its side effects.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(R) + Sync,
    {
        let f = &self.f;
        run_blocks(self.items, &|t| g(f(t)));
    }

    /// Reduce mapped results with `op`, seeding each block with
    /// `identity()`. `op` must be associative and commutative with the
    /// identity for the result to be well-defined (as with real rayon).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        run_blocks(self.items, &self.f)
            .into_iter()
            .fold(identity(), &op)
    }

    /// Sum the mapped results.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        run_blocks(self.items, &self.f).into_iter().sum()
    }
}

/// Conversion into a [`ParIter`], by value.
pub trait IntoParallelIterator {
    /// Element type of the parallel iterator.
    type Item: Send;
    /// Build the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Conversion into a [`ParIter`] over shared references.
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a shared reference).
    type Item: Send;
    /// Build the parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Conversion into a [`ParIter`] over mutable references.
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type (a mutable reference).
    type Item: Send;
    /// Build the parallel iterator over `&mut self`'s elements.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// Parallel chunked views of mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of length
    /// `chunk_size` (last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Parallel chunked views of shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over non-overlapping chunks of length
    /// `chunk_size` (last chunk may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// One-stop imports mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_fills_disjointly() {
        let mut data = vec![0u64; 100];
        data.par_chunks_mut(7).enumerate().for_each(|(ci, chunk)| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (ci * 7 + j) as u64;
            }
        });
        assert_eq!(data, (0..100u64).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn reduce_sums() {
        let total: u64 = (0..100usize).into_par_iter().map(|i| i as u64).sum();
        assert_eq!(total, 4950);
        let r = (1..5usize)
            .into_par_iter()
            .map(|i| i as u64)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(r, 10);
    }

    #[test]
    fn zip_pairs_positionally() {
        let mut scratch = vec![0usize; 3];
        let mut out = vec![0u64; 30];
        scratch
            .par_iter_mut()
            .zip(out.par_chunks_mut(10))
            .enumerate()
            .for_each(|(ci, (s, chunk))| {
                *s = ci;
                for v in chunk.iter_mut() {
                    *v = ci as u64;
                }
            });
        assert_eq!(scratch, vec![0, 1, 2]);
        assert_eq!(out[0], 0);
        assert_eq!(out[15], 1);
        assert_eq!(out[29], 2);
    }

    #[test]
    fn chunk_bounds_matches_chunks_mut() {
        for &(len, cs) in &[
            (0usize, 7usize),
            (1, 7),
            (7, 7),
            (100, 7),
            (1024, 1024),
            (2049, 1024),
        ] {
            let mut data = vec![0u8; len];
            let expect: Vec<(usize, usize)> = {
                let mut v = Vec::new();
                let mut start = 0;
                for c in data.chunks_mut(cs) {
                    v.push((start, start + c.len()));
                    start += c.len();
                }
                v
            };
            assert_eq!(chunk_bounds(len, cs), expect, "len={len} cs={cs}");
        }
    }

    #[test]
    fn par_iter_over_refs() {
        let v = vec![1.0f64, 2.0, 3.0];
        let doubled: Vec<f64> = v.par_iter().map(|x| x * 2.0).collect();
        assert_eq!(doubled, vec![2.0, 4.0, 6.0]);
    }
}
