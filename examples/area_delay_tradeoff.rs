//! Area/delay trade-off curve under statistical delay constraints.
//!
//! Sweeps the deadline for an 8-bit ripple-carry adder and reports the
//! minimum area that meets it at three confidence levels (mu, mu + sigma,
//! mu + 3 sigma — i.e. 50%, 84.1% and 99.8% of circuits). The gap between
//! the columns is the silicon price of timing confidence; it is what the
//! statistical formulation lets a designer choose deliberately instead of
//! paying blanket worst-case margins.
//!
//! Run with `cargo run -p sgs-core --example area_delay_tradeoff --release`.

use sgs_core::{DelaySpec, Objective, Sizer};
use sgs_netlist::{generate, Library};
use sgs_ssta::ssta;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = generate::ripple_carry_adder(8);
    let lib = Library::paper_default();
    let n = circuit.num_gates();

    let slow = ssta(&circuit, &lib, &vec![1.0; n]).delay;
    let fast = Sizer::new(&circuit, &lib)
        .objective(Objective::MeanDelay)
        .solve()?;
    println!(
        "adder: {n} gates; mean delay range [{:.2}, {:.2}], unsized sigma {:.3}",
        fast.delay.mean(),
        slow.mean(),
        slow.sigma()
    );

    println!(
        "\n{:>9} | {:>12} {:>14} {:>16}",
        "deadline", "area @ mu", "area @ mu+1s", "area @ mu+3s"
    );
    let lo = fast.delay.mean() * 1.08;
    let hi = slow.mean() * 0.98;
    for i in 0..6 {
        let d = lo + (hi - lo) * f64::from(i) / 5.0;
        let mut cells = Vec::new();
        for spec in [
            DelaySpec::MaxMean(d),
            DelaySpec::MaxMeanPlusKSigma { k: 1.0, d },
            DelaySpec::MaxMeanPlusKSigma { k: 3.0, d },
        ] {
            let r = Sizer::new(&circuit, &lib)
                .objective(Objective::Area)
                .delay_spec(spec)
                .solve();
            cells.push(match r {
                Ok(r) => format!("{:.2}", r.area),
                Err(_) => "infeas".to_string(),
            });
        }
        println!(
            "{:>9.3} | {:>12} {:>14} {:>16}",
            d, cells[0], cells[1], cells[2]
        );
    }
    println!("\nTighter confidence at the same deadline always costs area; the");
    println!("premium shrinks as the deadline loosens.");
    Ok(())
}
