//! Power-aware sizing: the paper's weighted-area objective with switching
//! activities folded into the weights (Section 4 of the paper: "if we take
//! into account capacitances and switching activity under zero delay model
//! in the weights, [the weighted sum of sizing factors] can model power").
//!
//! The demonstration circuit has two timing-balanced branches joining at
//! one output gate: a "hot" branch fed by a freely toggling input and a
//! "quiet" branch fed by a near-constant configuration input. Meeting a
//! delay target requires speeding up the branches — and speed factors are
//! interchangeable between them as far as *timing* goes. Uniform area
//! weights are indifferent; power weights push the sizing effort toward
//! the quiet branch, whose enlarged input capacitances are rarely charged.
//!
//! Run with `cargo run -p sgs-core --example low_power --release`.

use sgs_core::{DelaySpec, Objective, Sizer};
use sgs_netlist::{CircuitBuilder, GateKind, Library};
use sgs_ssta::power;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two 4-inverter branches into a NAND2.
    let mut b = CircuitBuilder::new("two_branch");
    let hot_in = b.add_input("hot");
    let quiet_in = b.add_input("quiet");
    let mut hot = hot_in;
    let mut quiet = quiet_in;
    for i in 0..4 {
        hot = b.add_gate(GateKind::Inv, format!("h{i}"), &[hot])?;
        quiet = b.add_gate(GateKind::Inv, format!("q{i}"), &[quiet])?;
    }
    let out = b.add_gate(GateKind::Nand2, "join", &[hot, quiet])?;
    b.mark_output(out)?;
    let circuit = b.build()?;

    let lib = Library::paper_default();
    let n = circuit.num_gates();
    // hot toggles half the time; quiet is a near-constant control signal.
    let input_probs: Vec<f64> = circuit
        .input_names()
        .iter()
        .map(|name| if *name == "quiet" { 0.98 } else { 0.5 })
        .collect();

    let baseline = sgs_ssta::ssta(&circuit, &lib, &vec![1.0; n]);
    let d = baseline.delay.mean() * 0.85;
    let spec = DelaySpec::MaxMean(d);
    println!("{circuit}");
    println!(
        "deadline: mu <= {d:.3} (unsized mu = {:.3})\n",
        baseline.delay.mean()
    );

    let area_run = Sizer::new(&circuit, &lib)
        .objective(Objective::Area)
        .delay_spec(spec.clone())
        .solve()?;
    let weights = power::power_weights(&circuit, &lib, &input_probs);
    let power_run = Sizer::new(&circuit, &lib)
        .objective(Objective::WeightedArea(weights))
        .delay_spec(spec)
        .solve()?;

    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} | {:>10} {:>10}",
        "objective", "mu", "sigma", "sum S", "power", "S hot br.", "S quiet br."
    );
    for (label, r) in [("min area", &area_run), ("min power", &power_run)] {
        let p = power::power_estimate(&circuit, &lib, &r.s, &input_probs);
        let branch_avg = |prefix: char| -> f64 {
            let idx: Vec<usize> = circuit
                .gates()
                .filter(|(_, g)| g.name.starts_with(prefix))
                .map(|(id, _)| id.index())
                .collect();
            idx.iter().map(|&i| r.s[i]).sum::<f64>() / idx.len() as f64
        };
        println!(
            "{:<12} {:>9.3} {:>9.3} {:>9.2} {:>9.4} | {:>10.3} {:>10.3}",
            label,
            r.delay.mean(),
            r.delay.sigma(),
            r.area,
            p,
            branch_avg('h'),
            branch_avg('q')
        );
    }

    let p_area = power::power_estimate(&circuit, &lib, &area_run.s, &input_probs);
    let p_power = power::power_estimate(&circuit, &lib, &power_run.s, &input_probs);
    println!(
        "\npower-weighted sizing saves {:.2}% switched capacitance at the same deadline,",
        100.0 * (p_area - p_power) / p_area
    );
    println!("by moving speed factors from the hot branch to the quiet branch.");
    Ok(())
}
