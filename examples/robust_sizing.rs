//! Robust sizing vs deterministic worst-case margins.
//!
//! The paper's motivation: traditional corner-based timing treats every
//! gate at its 3-sigma worst case simultaneously, which is far more
//! pessimistic than the statistics of a real path. This example sizes a
//! synthetic benchmark three ways and compares what each guarantees and
//! what each costs, with Monte Carlo as the referee:
//!
//! * minimum mean delay (ignores uncertainty),
//! * minimum `mu + 3 sigma` (the paper's statistical robust objective),
//! * a deterministic sizer that treats each gate delay as `mu + 3 sigma`
//!   (the worst-case-margin strategy the statistical method replaces).
//!
//! Run with `cargo run -p sgs-core --example robust_sizing --release`.

use sgs_core::{Objective, Sizer, SolverChoice};
use sgs_netlist::generate::RandomDagSpec;
use sgs_netlist::{generate, Library};
use sgs_ssta::{monte_carlo, sta_deterministic, McOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = generate::random_dag(&RandomDagSpec {
        name: "robust_demo".into(),
        cells: 200,
        inputs: 24,
        depth: 16,
        seed: 41,
        back_jump_pct: 85,
        spine_extra_load: 0.3,
    });
    let _ = generate::tree7(); // keep the module import obvious in docs
    let lib = Library::paper_default();
    println!("circuit: {circuit}");

    let mean_sized = Sizer::new(&circuit, &lib)
        .objective(Objective::MeanDelay)
        .solver(SolverChoice::ReducedSpace)
        .solve()?;
    let robust_sized = Sizer::new(&circuit, &lib)
        .objective(Objective::MeanPlusKSigma(3.0))
        .solver(SolverChoice::ReducedSpace)
        .solve()?;

    let mc_opts = McOptions {
        samples: 100_000,
        seed: 5,
        criticality: false,
        ..Default::default()
    };
    println!(
        "\n{:<22} {:>9} {:>9} {:>11} {:>9} | {:>14}",
        "sizing", "mu", "sigma", "mu+3sigma", "area", "P99.8 (MC)"
    );
    for (label, r) in [("min mu", &mean_sized), ("min mu + 3 sigma", &robust_sized)] {
        let mc = monte_carlo(&circuit, &lib, &r.s, &mc_opts);
        println!(
            "{:<22} {:>9.3} {:>9.3} {:>11.3} {:>9.1} | {:>14.4}",
            label,
            r.delay.mean(),
            r.delay.sigma(),
            r.mean_plus_k_sigma(3.0),
            r.area,
            mc.quantile(0.998)
        );
    }

    // What a deterministic worst-case margin predicts for the robust
    // sizing, vs what the statistics say.
    let (worst_case, _) = sta_deterministic(&circuit, &lib, &robust_sized.s, 3.0);
    let mc = monte_carlo(&circuit, &lib, &robust_sized.s, &mc_opts);
    println!(
        "\nfor the robust sizing: corner STA (every gate at +3 sigma) predicts {:.2};",
        worst_case
    );
    println!(
        "the statistical mu + 3 sigma bound is {:.2}; Monte Carlo's actual 99.8th",
        robust_sized.mean_plus_k_sigma(3.0)
    );
    println!(
        "percentile is {:.2}. The corner margin over-predicts by {:.1}%.",
        mc.quantile(0.998),
        100.0 * (worst_case - mc.quantile(0.998)) / mc.quantile(0.998)
    );
    Ok(())
}
