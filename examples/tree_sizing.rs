//! The paper's tree-circuit study (Tables 2 and 3): how different
//! objectives shape the speed factors of the 7-NAND tree of Fig. 3.
//!
//! At a pinned mean delay there is still freedom in sigma; minimising or
//! maximising it moves area and redistributes the speed factors in
//! characteristic ways (symmetric gates stay symmetric for min-sigma,
//! max-sigma deliberately unbalances the branches).
//!
//! Run with `cargo run -p sgs-core --example tree_sizing --release`.

use sgs_core::{DelaySpec, Objective, Sizer};
use sgs_netlist::{generate, Library};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = generate::tree7();
    let lib = Library::paper_default();

    // The feasible range of mean delay.
    let slow = Sizer::new(&circuit, &lib)
        .objective(Objective::Area)
        .solve()?;
    let fast = Sizer::new(&circuit, &lib)
        .objective(Objective::MeanDelay)
        .solve()?;
    println!(
        "feasible mean delay range: [{:.3}, {:.3}] (area {:.1} to {:.1})",
        fast.delay.mean(),
        slow.delay.mean(),
        slow.area,
        fast.area
    );

    // Sweep a pinned mean across the range; at each pin report the sigma
    // interval and the area cost of shaping it.
    println!(
        "\n{:>6} | {:>11} {:>11} {:>11} | {:>9} {:>9} {:>9}",
        "mu pin", "sig(minS)", "sig(min)", "sig(max)", "S(minS)", "S(minsig)", "S(maxsig)"
    );
    for pin in [5.8, 6.2, 6.5, 6.9, 7.2] {
        let spec = DelaySpec::ExactMean(pin);
        let a = Sizer::new(&circuit, &lib)
            .objective(Objective::Area)
            .delay_spec(spec.clone())
            .solve()?;
        let lo = Sizer::new(&circuit, &lib)
            .objective(Objective::Sigma)
            .delay_spec(spec.clone())
            .solve()?;
        let hi = Sizer::new(&circuit, &lib)
            .objective(Objective::NegSigma)
            .delay_spec(spec.clone())
            .solve()?;
        println!(
            "{:>6.2} | {:>11.4} {:>11.4} {:>11.4} | {:>9.2} {:>9.2} {:>9.2}",
            pin,
            a.delay.sigma(),
            lo.delay.sigma(),
            hi.delay.sigma(),
            a.area,
            lo.area,
            hi.area
        );
    }

    // Speed factors at the mid pin, as in the paper's Table 3.
    println!("\nspeed factors at mu = 6.5:");
    for (label, obj) in [
        ("min area ", Objective::Area),
        ("min sigma", Objective::Sigma),
        ("max sigma", Objective::NegSigma),
    ] {
        let r = Sizer::new(&circuit, &lib)
            .objective(obj)
            .delay_spec(DelaySpec::ExactMean(6.5))
            .solve()?;
        let s: Vec<String> = circuit
            .gates()
            .zip(&r.s)
            .map(|((_, g), s)| format!("{}={:.2}", g.name, s))
            .collect();
        println!("  {label}: {}", s.join(" "));
    }
    Ok(())
}
