//! Quickstart: size a small circuit for minimum robust delay.
//!
//! Builds a full-adder circuit with the netlist builder, runs a
//! statistical timing analysis, sizes it for minimum `mu + 3 sigma`
//! (so 99.8% of manufactured circuits meet the reported delay), and
//! cross-checks the result with Monte Carlo.
//!
//! Run with `cargo run -p sgs-core --example quickstart --release`.

use sgs_core::{Objective, Sizer};
use sgs_netlist::{CircuitBuilder, GateKind, Library};
use sgs_ssta::{monte_carlo, ssta, McOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe a circuit.
    let mut b = CircuitBuilder::new("quickstart");
    let x = b.add_input("x");
    let y = b.add_input("y");
    let z = b.add_input("z");
    let s1 = b.add_gate(GateKind::Xor2, "s1", &[x, y])?;
    let sum = b.add_gate(GateKind::Xor2, "sum", &[s1, z])?;
    let c1 = b.add_gate(GateKind::And2, "c1", &[x, y])?;
    let c2 = b.add_gate(GateKind::And2, "c2", &[s1, z])?;
    let carry = b.add_gate(GateKind::Or2, "carry", &[c1, c2])?;
    b.mark_output(sum)?;
    b.mark_output(carry)?;
    let circuit = b.build()?;
    println!("circuit: {circuit}");

    // 2. Statistical timing at minimum size (every speed factor = 1).
    let lib = Library::paper_default();
    let baseline = ssta(&circuit, &lib, &vec![1.0; circuit.num_gates()]);
    println!(
        "unsized:  mu = {:.3}, sigma = {:.3}, mu + 3 sigma = {:.3}",
        baseline.delay.mean(),
        baseline.delay.sigma(),
        baseline.mean_plus_k_sigma(3.0)
    );

    // 3. Size for minimum mu + 3 sigma.
    let result = Sizer::new(&circuit, &lib)
        .objective(Objective::MeanPlusKSigma(3.0))
        .solve()?;
    println!(
        "sized:    mu = {:.3}, sigma = {:.3}, mu + 3 sigma = {:.3}  (area {:.2} -> {:.2})",
        result.delay.mean(),
        result.delay.sigma(),
        result.mean_plus_k_sigma(3.0),
        circuit.num_gates() as f64,
        result.area
    );
    for ((_, gate), s) in circuit.gates().zip(&result.s) {
        println!("  S_{} = {:.3}", gate.name, s);
    }

    // 4. Validate with Monte Carlo: ~99.8% of circuits should meet the
    //    reported mu + 3 sigma deadline.
    let mc = monte_carlo(&circuit, &lib, &result.s, &McOptions::default());
    println!(
        "Monte Carlo yield at mu + 3 sigma: {:.2}% (theory 99.8%)",
        100.0 * mc.yield_at(result.mean_plus_k_sigma(3.0))
    );
    Ok(())
}
