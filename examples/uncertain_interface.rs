//! Sizing under uncertain interface timing.
//!
//! The statistical delay model exists to express uncertainty that is not
//! knowable at sizing time — the paper's introduction names unknown layout
//! and upstream effects explicitly. This example gives a block's primary
//! inputs *uncertain arrival times* (late and noisy data inputs, clean
//! control inputs) and shows how the optimal sizing shifts compared to the
//! clean-interface assumption: gates downstream of noisy inputs work
//! harder, and the achievable robust delay degrades by more than the mean
//! arrival shift alone.
//!
//! Run with `cargo run -p sgs-core --example uncertain_interface --release`.

use sgs_core::{Objective, Sizer};
use sgs_netlist::{generate, Library};
use sgs_statmath::Normal;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = generate::ripple_carry_adder(6);
    let lib = Library::paper_default();
    println!("{circuit}");

    // Clean interface: everything arrives at t = 0 exactly.
    let clean = Sizer::new(&circuit, &lib)
        .objective(Objective::MeanPlusKSigma(3.0))
        .solve()?;

    // Uncertain interface: the `a` operand arrives late and noisy (it
    // comes from a distant block over long wires); `b` and carry-in are
    // clean.
    let arrivals: Vec<Normal> = circuit
        .input_names()
        .iter()
        .map(|name| {
            if name.starts_with('a') {
                Normal::new(3.0, 1.0)
            } else {
                Normal::certain(0.0)
            }
        })
        .collect();
    let noisy = Sizer::new(&circuit, &lib)
        .objective(Objective::MeanPlusKSigma(3.0))
        .input_arrivals(arrivals)
        .solve()?;

    println!(
        "\n{:<20} {:>9} {:>9} {:>12} {:>9}",
        "interface", "mu", "sigma", "mu+3sigma", "area"
    );
    for (label, r) in [("clean (t = 0)", &clean), ("noisy a-inputs", &noisy)] {
        println!(
            "{:<20} {:>9.3} {:>9.3} {:>12.3} {:>9.2}",
            label,
            r.delay.mean(),
            r.delay.sigma(),
            r.mean_plus_k_sigma(3.0),
            r.area
        );
    }

    let shift = noisy.mean_plus_k_sigma(3.0) - clean.mean_plus_k_sigma(3.0);
    println!(
        "\nthe robust deadline degrades by {:.2} — more than the 3.0 mean arrival",
        shift
    );
    println!("shift, because the interface noise also widens the output distribution.");

    // Where did the sizing effort move? Compare average speed factors of
    // the first-stage XOR gates (fed by the noisy inputs) between runs.
    let first_stage: Vec<usize> = circuit
        .gates()
        .filter(|(_, g)| g.name.starts_with("x1_"))
        .map(|(id, _)| id.index())
        .collect();
    let avg = |s: &[f64]| first_stage.iter().map(|&i| s[i]).sum::<f64>() / first_stage.len() as f64;
    println!(
        "\nmean speed factor of the input-stage XORs: clean {:.3} -> noisy {:.3}",
        avg(&clean.s),
        avg(&noisy.s)
    );
    Ok(())
}
